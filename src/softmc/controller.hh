/**
 * @file
 * SoftMC-style software memory controller.
 *
 * The controller executes timed command sequences against a simulated
 * module, keeps a global cycle clock, converts elapsed cycles into
 * simulated wall-clock time (so leakage is honest), and accounts
 * cycles per labeled operation for the paper's latency numbers.
 *
 * It also provides the JEDEC-compliant host helpers (read/write a
 * row) in both the logic and the voltage domain. The voltage-domain
 * helpers implement the paper's Sec. II-C convention: anti-cell rows
 * get complemented data so all cells physically hold the same voltage.
 */

#ifndef FRACDRAM_SOFTMC_CONTROLLER_HH
#define FRACDRAM_SOFTMC_CONTROLLER_HH

#include <map>
#include <string>

#include "common/bitvec.hh"
#include "common/types.hh"
#include "sim/chip.hh"
#include "softmc/command.hh"
#include "softmc/timing.hh"

namespace fracdram::softmc
{

/**
 * Accumulates memory cycles per labeled operation class.
 */
class CycleAccountant
{
  public:
    /** Charge @p cycles to @p label. */
    void add(const std::string &label, Cycles cycles);

    /** Cycles charged to a label (0 when never charged). */
    Cycles of(const std::string &label) const;

    /** Number of executions charged to a label. */
    std::size_t countOf(const std::string &label) const;

    /** Total cycles across all labels. */
    Cycles total() const;

    /** Reset all counters. */
    void clear();

    /** Labeled totals, sorted by label. */
    const std::map<std::string, Cycles> &byLabel() const
    {
        return cycles_;
    }

  private:
    std::map<std::string, Cycles> cycles_;
    std::map<std::string, std::size_t> counts_;
};

/**
 * The software memory controller driving one module.
 */
class MemoryController
{
  public:
    /**
     * @param chip module to drive
     * @param enforce_spec refuse sequences that violate JEDEC timing
     *        (host-helper mode); primitives need this off
     */
    explicit MemoryController(sim::DramChip &chip,
                              bool enforce_spec = false);

    /** Result of executing one sequence. */
    struct ExecResult
    {
        std::vector<BitVector> reads; //!< data of READ commands
        Cycles cycles = 0;            //!< sequence length
    };

    /**
     * Execute a sequence against the module.
     *
     * All pending activations/closes are resolved at the end of the
     * sequence (the bus goes quiet), and simulated time advances by
     * the sequence length.
     *
     * @param seq sequence to run
     * @param label accountant label to charge
     */
    ExecResult execute(const CommandSequence &seq,
                       const std::string &label = "sequence");

    /** @name JEDEC-compliant host helpers (logic domain) */
    /// @{
    /** Write a full row of logic data. */
    void writeRow(BankAddr bank, RowAddr row, const BitVector &bits);
    /** Read a full row of logic data (normal destructive-restore). */
    BitVector readRow(BankAddr bank, RowAddr row);
    /// @}

    /** @name Voltage-domain helpers (paper Sec. II-C convention) */
    /// @{
    /** Write so that bit=1 means the cell holds V_dd. */
    void writeRowVoltage(BankAddr bank, RowAddr row,
                         const BitVector &high_bits);
    /** Read where bit=1 means the cell held a high voltage. */
    BitVector readRowVoltage(BankAddr bank, RowAddr row);
    /** Fill a row with one physical level. */
    void fillRowVoltage(BankAddr bank, RowAddr row, bool high);
    /// @}

    /** Issue a REFRESH to the module (all banks). */
    void refreshAll();

    /**
     * JEDEC-compliant precharge-all. Useful after out-of-spec
     * sequences on timing-checker modules, which can leave a bank
     * open when they drop the sequence's (too-early) PRECHARGE.
     */
    void prechargeAllBanks();

    /** Let simulated wall-clock time pass (no commands issued). */
    void waitSeconds(Seconds s);

    /** Convert logic bits to/from the voltage domain for a row. */
    BitVector toVoltageDomain(BankAddr bank, RowAddr row,
                              const BitVector &logic) const;

    /** Cycles a full-row readout costs, including burst transfers. */
    Cycles readRowCycles() const;

    /** Cycles of one burst transfer (default 4; optimized MCs: 2). */
    void setCyclesPerBurst(Cycles c) { cyclesPerBurst_ = c; }
    Cycles cyclesPerBurst() const { return cyclesPerBurst_; }

    /** Whether JEDEC timing is being enforced on execute(). */
    bool enforcesSpec() const { return enforceSpec_; }
    void setEnforceSpec(bool enforce) { enforceSpec_ = enforce; }

    const TimingSpec &spec() const { return spec_; }
    CycleAccountant &accountant() { return accountant_; }
    sim::DramChip &chip() { return chip_; }

    /** Global cycle clock (monotone across sequences). */
    Cycles nowCycles() const { return clock_; }

  private:
    sim::DramChip &chip_;
    TimingSpec spec_;
    bool enforceSpec_;
    Cycles clock_ = 0;
    Cycles cyclesPerBurst_ = 4;
    CycleAccountant accountant_;
    /** Telemetry lane on the DRAM-cycle trace timeline; controllers
     *  get distinct lanes so parallel trials don't interleave. */
    std::uint32_t telemetryLane_;
};

} // namespace fracdram::softmc

#endif // FRACDRAM_SOFTMC_CONTROLLER_HH
