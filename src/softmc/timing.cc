#include "softmc/timing.hh"

#include <optional>

#include "common/logging.hh"

namespace fracdram::softmc
{

TimingSpec
TimingSpec::ddr3()
{
    return TimingSpec{};
}

namespace
{

struct BankTrack
{
    std::optional<Cycles> lastAct;
    std::optional<Cycles> lastPre;
    std::optional<Cycles> lastRead;
    std::optional<Cycles> lastWrite;
    bool open = false;
};

} // namespace

std::vector<TimingViolation>
TimingSpec::check(const CommandSequence &seq,
                  std::uint32_t num_banks) const
{
    std::vector<TimingViolation> out;
    std::vector<BankTrack> banks(num_banks);
    std::optional<Cycles> lastActAnyBank;
    std::optional<Cycles> lastRefresh;

    auto violate = [&out](Cycles cycle, std::string what) {
        out.push_back({cycle, std::move(what)});
    };

    auto require_gap = [&](Cycles cycle, std::optional<Cycles> since,
                           Cycles min, const char *what) {
        if (since && cycle < *since + min) {
            violate(cycle,
                    strprintf("%s: gap %llu < %llu cycles", what,
                              static_cast<unsigned long long>(
                                  cycle - *since),
                              static_cast<unsigned long long>(min)));
        }
    };

    for (const auto &tc : seq.commands()) {
        const Cycles cycle = tc.cycle;
        const auto &cmd = tc.cmd;

        if (cmd.kind != CommandKind::Refresh &&
            cmd.kind != CommandKind::Nop) {
            require_gap(cycle, lastRefresh, tRfc, "tRFC");
        }

        switch (cmd.kind) {
          case CommandKind::Act: {
            if (cmd.bank >= num_banks) {
                violate(cycle, strprintf("ACT: bad bank %u", cmd.bank));
                break;
            }
            auto &bt = banks[cmd.bank];
            if (bt.open)
                violate(cycle, "ACT on an open bank (missing PRE)");
            require_gap(cycle, bt.lastAct, tRc, "tRC");
            require_gap(cycle, bt.lastPre, tRp, "tRP");
            if (lastActAnyBank && (!bt.lastAct ||
                                   *lastActAnyBank != *bt.lastAct)) {
                require_gap(cycle, lastActAnyBank, tRrd, "tRRD");
            }
            bt.lastAct = cycle;
            bt.open = true;
            lastActAnyBank = cycle;
            break;
          }
          case CommandKind::Pre:
          case CommandKind::PreAll: {
            const BankAddr lo =
                cmd.kind == CommandKind::Pre ? cmd.bank : 0;
            const BankAddr hi = cmd.kind == CommandKind::Pre
                                    ? cmd.bank + 1
                                    : num_banks;
            if (lo >= num_banks) {
                violate(cycle, strprintf("PRE: bad bank %u", cmd.bank));
                break;
            }
            for (BankAddr b = lo; b < hi; ++b) {
                auto &bt = banks[b];
                if (!bt.open)
                    continue;
                require_gap(cycle, bt.lastAct, tRas, "tRAS");
                require_gap(cycle, bt.lastRead, tRtp, "tRTP");
                require_gap(cycle, bt.lastWrite, tWr, "tWR");
                bt.lastPre = cycle;
                bt.open = false;
            }
            break;
          }
          case CommandKind::Read: {
            if (cmd.bank >= num_banks) {
                violate(cycle, strprintf("RD: bad bank %u", cmd.bank));
                break;
            }
            auto &bt = banks[cmd.bank];
            if (!bt.open)
                violate(cycle, "RD on a closed bank");
            require_gap(cycle, bt.lastAct, tRcd, "tRCD");
            bt.lastRead = cycle;
            break;
          }
          case CommandKind::Write: {
            if (cmd.bank >= num_banks) {
                violate(cycle, strprintf("WR: bad bank %u", cmd.bank));
                break;
            }
            auto &bt = banks[cmd.bank];
            if (!bt.open)
                violate(cycle, "WR on a closed bank");
            require_gap(cycle, bt.lastAct, tRcd, "tRCD");
            bt.lastWrite = cycle;
            break;
          }
          case CommandKind::Refresh: {
            for (BankAddr b = 0; b < num_banks; ++b) {
                if (banks[b].open) {
                    violate(cycle, strprintf(
                                       "REFRESH with bank %u open", b));
                }
            }
            lastRefresh = cycle;
            break;
          }
          case CommandKind::Nop:
            break;
        }
    }
    return out;
}

} // namespace fracdram::softmc
