/**
 * @file
 * JEDEC DDR3 timing constraints (expressed in 2.5 ns SoftMC cycles)
 * and a sequence checker.
 *
 * The checker serves two purposes: host-level helpers run with
 * enforcement ON to prove they are JEDEC-compliant, and the FracDRAM
 * primitives run with enforcement OFF - the checker then *documents*
 * exactly which constraints each primitive violates.
 */

#ifndef FRACDRAM_SOFTMC_TIMING_HH
#define FRACDRAM_SOFTMC_TIMING_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "softmc/command.hh"

namespace fracdram::softmc
{

/** One detected timing violation. */
struct TimingViolation
{
    Cycles cycle;     //!< cycle of the offending command
    std::string what; //!< human-readable description
};

/**
 * DDR3 timing constraints in memory cycles at the 400 MHz SoftMC
 * command clock (2.5 ns per cycle).
 */
struct TimingSpec
{
    Cycles tRcd = 6;  //!< ACT -> READ/WRITE
    Cycles tRp = 5;   //!< PRE -> ACT
    Cycles tRas = 14; //!< ACT -> PRE
    Cycles tRc = 20;  //!< ACT -> ACT (same bank)
    Cycles tRrd = 4;  //!< ACT -> ACT (different bank)
    Cycles tRtp = 4;  //!< READ -> PRE
    Cycles tWr = 6;   //!< last write data -> PRE
    Cycles tRfc = 64; //!< REFRESH -> any

    /** Nominal DDR3-1333 values at the SoftMC clock. */
    static TimingSpec ddr3();

    /**
     * Check a sequence against the constraints.
     * @param seq sequence to check
     * @param num_banks banks on the module
     * @return all violations, in cycle order (empty when compliant)
     */
    std::vector<TimingViolation> check(const CommandSequence &seq,
                                       std::uint32_t num_banks) const;
};

} // namespace fracdram::softmc

#endif // FRACDRAM_SOFTMC_TIMING_HH
