#include "telemetry/metrics.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cstdlib>

namespace fracdram::telemetry
{

namespace
{

#ifdef FRACDRAM_TELEMETRY_DEFAULT
std::atomic<bool> gEnabled{true};
#else
std::atomic<bool> gEnabled{false};
#endif

} // namespace

bool
enabled()
{
    return gEnabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    gEnabled.store(on, std::memory_order_relaxed);
}

std::string
initFromEnv()
{
    const char *env = std::getenv("FRACDRAM_TELEMETRY");
    if (env == nullptr) {
        // Unset keeps the build's default (off, unless configured
        // with FRACDRAM_TELEMETRY_DEFAULT).
        return "";
    }
    if (env[0] == '\0' || (env[0] == '0' && env[1] == '\0')) {
        setEnabled(false);
        return "";
    }
    setEnabled(true);
    if (env[0] == '1' && env[1] == '\0')
        return ""; // record in memory, no file output
    return env;    // value doubles as the report directory
}

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint64_t
HistogramSnapshot::quantile(double q) const
{
    if (count == 0)
        return 0; // no samples: 0, never a bucket bound
    if (q <= 0.0)
        return min;
    if (q >= 1.0)
        return max; // clamp to the recorded maximum
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(count - 1));
    std::uint64_t seen = 0;
    for (std::size_t k = 0; k < buckets.size(); ++k) {
        seen += buckets[k];
        if (seen > target) {
            // Upper bound of bucket k: values with bit width k. The
            // bound can overshoot (or, for the lowest bucket,
            // undershoot) the recorded extremes; clamp so quantiles
            // stay inside [min, max].
            const std::uint64_t upper =
                k == 0 ? 0
                       : (k >= 64 ? UINT64_MAX
                                  : (std::uint64_t{1} << k) - 1);
            return std::clamp(upper, min, max);
        }
    }
    return max;
}

HistogramSnapshot
HistogramSnapshot::deltaSince(const HistogramSnapshot &prev) const
{
    auto sat_sub = [](std::uint64_t a, std::uint64_t b) {
        return a >= b ? a - b : std::uint64_t{0};
    };
    HistogramSnapshot d;
    d.count = sat_sub(count, prev.count);
    d.sum = sat_sub(sum, prev.sum);
    d.min = min;
    d.max = max;
    d.buckets.assign(buckets.size(), 0);
    for (std::size_t k = 0; k < buckets.size(); ++k) {
        const std::uint64_t before =
            k < prev.buckets.size() ? prev.buckets[k] : 0;
        d.buckets[k] = sat_sub(buckets[k], before);
    }
    return d;
}

/**
 * One thread's private slice of every metric. Writers touch only
 * their own shard with relaxed atomics; the snapshot walker reads the
 * same atomics, so no lock is needed between them. Slot arrays are
 * fully pre-sized: a shard's addresses never move after construction.
 */
struct Metrics::Shard
{
    struct HistSlot
    {
        std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
        std::atomic<std::uint64_t> sum{0};
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> min{UINT64_MAX};
        std::atomic<std::uint64_t> max{0};
    };

    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    std::vector<HistSlot> histograms =
        std::vector<HistSlot>(kMaxHistograms);
};

Metrics &
Metrics::instance()
{
    // Leaked singleton: worker threads may record during static
    // destruction of other objects; a destructed registry would be a
    // use-after-free, a leaked one is not.
    static Metrics *m = new Metrics();
    return *m;
}

Metrics::Shard &
Metrics::localShard()
{
    // The shard outlives its thread (the registry keeps the pointer
    // and reads it on snapshot), so it is heap-allocated and leaked
    // alongside the registry rather than stored thread_local
    // by value.
    thread_local Shard *shard = [this] {
        auto *s = new Shard();
        std::lock_guard<std::mutex> lock(mutex_);
        shards_.push_back(s);
        return s;
    }();
    return *shard;
}

CounterId
Metrics::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = counterNames_.try_emplace(
        name, static_cast<std::uint32_t>(counterNames_.size()));
    if (inserted && counterNames_.size() > kMaxCounters) {
        counterNames_.erase(it);
        return {}; // capacity exhausted: drop, don't crash
    }
    return {it->second};
}

HistogramId
Metrics::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = histogramNames_.try_emplace(
        name, static_cast<std::uint32_t>(histogramNames_.size()));
    if (inserted && histogramNames_.size() > kMaxHistograms) {
        histogramNames_.erase(it);
        return {};
    }
    return {it->second};
}

GaugeId
Metrics::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = gaugeNames_.try_emplace(
        name, static_cast<std::uint32_t>(gaugeNames_.size()));
    if (inserted) {
        if (gaugeNames_.size() > kMaxGauges) {
            gaugeNames_.erase(it);
            return {};
        }
        gauges_.push_back(new std::atomic<std::int64_t>(0));
    }
    return {it->second};
}

void
Metrics::add(CounterId id, std::uint64_t n)
{
    if (!id.valid())
        return;
    localShard().counters[id.index].fetch_add(
        n, std::memory_order_relaxed);
}

void
Metrics::observe(HistogramId id, std::uint64_t value)
{
    if (!id.valid())
        return;
    auto &slot = localShard().histograms[id.index];
    const auto k = static_cast<std::size_t>(std::bit_width(value));
    slot.buckets[k].fetch_add(1, std::memory_order_relaxed);
    slot.sum.fetch_add(value, std::memory_order_relaxed);
    slot.count.fetch_add(1, std::memory_order_relaxed);
    // min/max: CAS loops, but each shard is single-writer so the loop
    // effectively never retries.
    std::uint64_t cur = slot.min.load(std::memory_order_relaxed);
    while (value < cur &&
           !slot.min.compare_exchange_weak(cur, value,
                                           std::memory_order_relaxed))
        ;
    cur = slot.max.load(std::memory_order_relaxed);
    while (value > cur &&
           !slot.max.compare_exchange_weak(cur, value,
                                           std::memory_order_relaxed))
        ;
}

void
Metrics::set(GaugeId id, std::int64_t value)
{
    if (!id.valid())
        return;
    std::atomic<std::int64_t> *slot = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        slot = gauges_[id.index];
    }
    slot->store(value, std::memory_order_relaxed);
}

void
Metrics::addGauge(GaugeId id, std::int64_t delta)
{
    if (!id.valid())
        return;
    std::atomic<std::int64_t> *slot = nullptr;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        slot = gauges_[id.index];
    }
    slot->fetch_add(delta, std::memory_order_relaxed);
}

MetricsSnapshot
Metrics::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, idx] : counterNames_) {
        std::uint64_t total = 0;
        for (const Shard *s : shards_)
            total +=
                s->counters[idx].load(std::memory_order_relaxed);
        snap.counters.emplace(name, total);
    }
    for (const auto &[name, idx] : gaugeNames_) {
        snap.gauges.emplace(
            name, gauges_[idx]->load(std::memory_order_relaxed));
    }
    for (const auto &[name, idx] : histogramNames_) {
        HistogramSnapshot h;
        h.buckets.assign(kBuckets, 0);
        h.min = UINT64_MAX;
        for (const Shard *s : shards_) {
            const auto &slot = s->histograms[idx];
            h.count += slot.count.load(std::memory_order_relaxed);
            h.sum += slot.sum.load(std::memory_order_relaxed);
            h.min = std::min(
                h.min, slot.min.load(std::memory_order_relaxed));
            h.max = std::max(
                h.max, slot.max.load(std::memory_order_relaxed));
            for (std::size_t k = 0; k < kBuckets; ++k)
                h.buckets[k] += slot.buckets[k].load(
                    std::memory_order_relaxed);
        }
        if (h.count == 0)
            h.min = 0;
        snap.histograms.emplace(name, std::move(h));
    }
    return snap;
}

void
Metrics::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Shard *s : shards_) {
        for (auto &c : s->counters)
            c.store(0, std::memory_order_relaxed);
        for (auto &hist : s->histograms) {
            for (auto &b : hist.buckets)
                b.store(0, std::memory_order_relaxed);
            hist.sum.store(0, std::memory_order_relaxed);
            hist.count.store(0, std::memory_order_relaxed);
            hist.min.store(UINT64_MAX, std::memory_order_relaxed);
            hist.max.store(0, std::memory_order_relaxed);
        }
    }
    for (auto *g : gauges_)
        g->store(0, std::memory_order_relaxed);
}

void
countNamed(const std::string &name, std::uint64_t n)
{
    if (!enabled())
        return;
    auto &m = Metrics::instance();
    m.add(m.counter(name), n);
}

} // namespace fracdram::telemetry
