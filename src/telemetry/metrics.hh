/**
 * @file
 * Low-overhead metrics registry: monotonic counters, gauges,
 * fixed-bucket histograms, and RAII scoped timers.
 *
 * Design constraints (see DESIGN.md, "Telemetry"):
 *
 *  - The *disabled* path must cost one relaxed atomic load and a
 *    branch per call site, so golden digests and bench numbers are
 *    unaffected when telemetry is off (the default).
 *  - The *enabled* hot path must be lock-free: each thread records
 *    into its own shard (plain relaxed atomics on pre-sized slots);
 *    shards are only walked - never locked against writers - when a
 *    snapshot aggregates them. Thread-local shard acquisition takes
 *    the registry mutex once per thread.
 *  - Recording never draws from any RNG and never perturbs the
 *    instrumented computation, so study outputs are bit-identical
 *    with telemetry on or off (enforced by tests/test_golden.cc).
 *
 * Metric names are interned to dense ids; hot call sites cache the id
 * in a function-local static, dynamic-label sites (e.g. the SoftMC
 * cycle accountant) intern per call under a shared read lock.
 * Histograms use power-of-two buckets (bucket k holds values whose
 * bit width is k), which covers the full u64 range in 65 buckets and
 * needs no per-histogram configuration.
 */

#ifndef FRACDRAM_TELEMETRY_METRICS_HH
#define FRACDRAM_TELEMETRY_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace fracdram::telemetry
{

/** Whether telemetry records anything (one relaxed load). */
bool enabled();

/** Master switch; also settable via initFromEnv(). */
void setEnabled(bool on);

/**
 * Resolve the enabled state and report directory from the
 * FRACDRAM_TELEMETRY environment variable: unset/"0"/"" leave
 * telemetry off, "1" enables recording without file output, any
 * other value enables recording and is used as the report directory.
 * @return the report directory ("" when none was configured)
 */
std::string initFromEnv();

/** Dense handle of an interned counter. */
struct CounterId
{
    std::uint32_t index = UINT32_MAX;
    bool valid() const { return index != UINT32_MAX; }
};

/** Dense handle of an interned histogram. */
struct HistogramId
{
    std::uint32_t index = UINT32_MAX;
    bool valid() const { return index != UINT32_MAX; }
};

/** Dense handle of an interned gauge. */
struct GaugeId
{
    std::uint32_t index = UINT32_MAX;
    bool valid() const { return index != UINT32_MAX; }
};

/** Aggregated view of one histogram. */
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    /** bucket k counts values v with bitWidth(v) == k (v=0 -> k=0). */
    std::vector<std::uint64_t> buckets;

    double mean() const
    {
        return count ? static_cast<double>(sum) /
                           static_cast<double>(count)
                     : 0.0;
    }

    /**
     * Bucket-resolution quantile: the upper bound of the bucket
     * holding the value at rank floor((count-1) * q), clamped into
     * [min, max] so no quantile ever overshoots what was actually
     * recorded. Edge cases: an empty histogram is 0 for every q,
     * q <= 0 is min, and q >= 1 is exactly max.
     */
    std::uint64_t quantile(double q) const;

    /**
     * Windowed view: the samples recorded since @p prev was taken
     * (count/sum/buckets subtracted, saturating at 0 so a reset
     * between snapshots cannot underflow). min/max stay the lifetime
     * extremes - per-bucket extremes are not recorded - so windowed
     * quantiles are still clamped into the lifetime range. This is
     * what the SLO watchdog evaluates its rolling p99 over.
     */
    HistogramSnapshot deltaSince(const HistogramSnapshot &prev) const;
};

/** A consistent aggregate of every shard at one point in time. */
struct MetricsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
};

/**
 * The process-global registry. All members are thread-safe.
 */
class Metrics
{
  public:
    static Metrics &instance();

    /** Intern a metric name (idempotent; same name -> same id). */
    CounterId counter(const std::string &name);
    HistogramId histogram(const std::string &name);
    GaugeId gauge(const std::string &name);

    /** @name Hot-path recording (no-ops on invalid ids) */
    /// @{
    void add(CounterId id, std::uint64_t n);
    void observe(HistogramId id, std::uint64_t value);
    void set(GaugeId id, std::int64_t value);
    void addGauge(GaugeId id, std::int64_t delta);
    /// @}

    /** Aggregate all shards. Pure read: snapshotting twice with no
     *  recording in between yields identical results. */
    MetricsSnapshot snapshot() const;

    /** Zero every shard slot and gauge (test hook; callers must
     *  guarantee no concurrent recording). */
    void reset();

  private:
    Metrics() = default;
    struct Shard;
    Shard &localShard();

    /** Slots are pre-sized so recording never reallocates. */
    static constexpr std::size_t kMaxCounters = 4096;
    static constexpr std::size_t kMaxHistograms = 256;
    static constexpr std::size_t kMaxGauges = 256;
    static constexpr std::size_t kBuckets = 65;

    mutable std::mutex mutex_; //!< names, shard list, gauge storage
    std::map<std::string, std::uint32_t> counterNames_;
    std::map<std::string, std::uint32_t> histogramNames_;
    std::map<std::string, std::uint32_t> gaugeNames_;
    std::vector<Shard *> shards_; //!< leaked on purpose (see .cc)
    std::vector<std::atomic<std::int64_t> *> gauges_;
};

/** @name Free-function recording helpers (enabled-gated) */
/// @{
inline void
count(CounterId id, std::uint64_t n = 1)
{
    if (enabled())
        Metrics::instance().add(id, n);
}

inline void
observe(HistogramId id, std::uint64_t value)
{
    if (enabled())
        Metrics::instance().observe(id, value);
}

inline void
setGauge(GaugeId id, std::int64_t value)
{
    if (enabled())
        Metrics::instance().set(id, value);
}

/** Dynamic-name counter (interns per call; for low-rate label sites). */
void countNamed(const std::string &name, std::uint64_t n = 1);
/// @}

/** Monotonic nanoseconds for timers and trace timestamps. */
std::uint64_t nowNs();

/**
 * RAII timer: records elapsed nanoseconds into a histogram. Reads the
 * clock only when telemetry is enabled at construction.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(HistogramId id)
        : id_(id), armed_(enabled() && id.valid()),
          start_(armed_ ? nowNs() : 0)
    {
    }
    ~ScopedTimer()
    {
        if (armed_)
            Metrics::instance().observe(id_, nowNs() - start_);
    }
    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    HistogramId id_;
    bool armed_;
    std::uint64_t start_;
};

} // namespace fracdram::telemetry

#endif // FRACDRAM_TELEMETRY_METRICS_HH
