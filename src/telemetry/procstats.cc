#include "telemetry/procstats.hh"

#include <dirent.h>
#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>

#include "telemetry/metrics.hh"

namespace fracdram::telemetry
{

namespace
{

std::int64_t
readRssBytes()
{
    // /proc/self/statm: size resident shared text lib data dt (pages).
    FILE *f = std::fopen("/proc/self/statm", "r");
    if (!f)
        return 0;
    long long size = 0, resident = 0;
    const int n = std::fscanf(f, "%lld %lld", &size, &resident);
    std::fclose(f);
    if (n != 2)
        return 0;
    return resident * static_cast<std::int64_t>(sysconf(_SC_PAGESIZE));
}

std::int64_t
countOpenFds()
{
    DIR *d = opendir("/proc/self/fd");
    if (!d)
        return 0;
    std::int64_t n = 0;
    while (struct dirent *e = readdir(d)) {
        if (e->d_name[0] != '.')
            ++n;
    }
    closedir(d);
    return n - 1; // opendir's own fd
}

std::int64_t
monoMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

ProcessStats
sampleProcessGauges()
{
    // The anchor is set on the first call, so uptime measures "since
    // the sampler started" - in practice server startup, since the
    // history thread samples immediately.
    static const std::int64_t start_ms = monoMs();

    ProcessStats st;
    st.rssBytes = readRssBytes();
    st.openFds = countOpenFds();
    st.uptimeMs = monoMs() - start_ms;

    struct rusage ru = {};
    if (getrusage(RUSAGE_SELF, &ru) == 0) {
        st.peakRssBytes = static_cast<std::int64_t>(ru.ru_maxrss) * 1024;
        st.cpuUserMs = static_cast<std::int64_t>(ru.ru_utime.tv_sec) *
                           1000 +
                       ru.ru_utime.tv_usec / 1000;
        st.cpuSysMs = static_cast<std::int64_t>(ru.ru_stime.tv_sec) *
                          1000 +
                      ru.ru_stime.tv_usec / 1000;
    }

    static const auto g_rss = Metrics::instance().gauge("process.rss_bytes");
    static const auto g_peak =
        Metrics::instance().gauge("process.peak_rss_bytes");
    static const auto g_user =
        Metrics::instance().gauge("process.cpu_user_ms");
    static const auto g_sys = Metrics::instance().gauge("process.cpu_sys_ms");
    static const auto g_fds = Metrics::instance().gauge("process.open_fds");
    static const auto g_up = Metrics::instance().gauge("process.uptime_ms");
    setGauge(g_rss, st.rssBytes);
    setGauge(g_peak, st.peakRssBytes);
    setGauge(g_user, st.cpuUserMs);
    setGauge(g_sys, st.cpuSysMs);
    setGauge(g_fds, st.openFds);
    setGauge(g_up, st.uptimeMs);
    return st;
}

} // namespace fracdram::telemetry
