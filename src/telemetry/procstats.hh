/**
 * @file
 * Whole-process resource gauges for /metrics: one sampler pass
 * refreshes the standard `process.*` family (resident set size, peak
 * RSS, user/sys CPU time, open file descriptors, uptime) from one
 * getrusage() call plus two /proc/self reads. The metrics-history
 * thread calls this once per tick, so a scrape - or a postmortem
 * bundle - always carries a recent view of what the daemon itself is
 * costing the machine, not just what it is serving.
 *
 * Everything is best-effort: a missing /proc entry leaves that gauge
 * at its previous value rather than failing the sample.
 */

#ifndef FRACDRAM_TELEMETRY_PROCSTATS_HH
#define FRACDRAM_TELEMETRY_PROCSTATS_HH

#include <cstdint>

namespace fracdram::telemetry
{

/** One sampled view of the process (also published as gauges). */
struct ProcessStats
{
    std::int64_t rssBytes = 0;     //!< current RSS (/proc/self/statm)
    std::int64_t peakRssBytes = 0; //!< ru_maxrss (lifetime peak)
    std::int64_t cpuUserMs = 0;    //!< ru_utime, cumulative
    std::int64_t cpuSysMs = 0;     //!< ru_stime, cumulative
    std::int64_t openFds = 0;      //!< entries in /proc/self/fd
    std::int64_t uptimeMs = 0;     //!< since the first sampler call
};

/**
 * Sample the process and publish the `process.*` gauges
 * (process.rss_bytes, process.peak_rss_bytes, process.cpu_user_ms,
 * process.cpu_sys_ms, process.open_fds, process.uptime_ms).
 * @return the sampled values (useful for tests and reports)
 */
ProcessStats sampleProcessGauges();

} // namespace fracdram::telemetry

#endif // FRACDRAM_TELEMETRY_PROCSTATS_HH
