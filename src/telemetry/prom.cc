#include "telemetry/prom.hh"

#include <cctype>
#include <map>
#include <vector>

#include "common/logging.hh"

namespace fracdram::telemetry
{

namespace
{

/**
 * Split "service.shard3.queue_depth" into the family name
 * "service.shard.queue_depth" and the label suffix {shard="3"},
 * and likewise "service.reactor1.conns" into "service.reactor.conns"
 * {reactor="1"} and "router.backend0.up" into "router.backend.up"
 * {backend="0"}. Per-instance series thus share one Prometheus
 * family instead of exploding into N distinct metric names. Names
 * without a shardN/reactorN/backendN component pass through with no
 * labels.
 */
void
splitShardLabel(const std::string &name, std::string &family,
                std::string &labels)
{
    static constexpr const char *kIndexed[] = {"shard", "reactor",
                                               "backend"};
    family.clear();
    labels.clear();
    std::size_t pos = 0;
    while (pos < name.size()) {
        std::size_t dot = name.find('.', pos);
        if (dot == std::string::npos)
            dot = name.size();
        const std::string token = name.substr(pos, dot - pos);
        bool consumed = false;
        for (const char *base : kIndexed) {
            const std::size_t blen = std::char_traits<char>::length(base);
            if (!labels.empty() || token.size() <= blen ||
                token.compare(0, blen, base) != 0)
                continue;
            bool digits = true;
            for (std::size_t i = blen; i < token.size(); ++i)
                digits = digits && std::isdigit(
                                       static_cast<unsigned char>(
                                           token[i])) != 0;
            if (!digits)
                continue;
            labels = std::string{"{"} + base + "=\"" +
                     token.substr(blen) + "\"}";
            if (!family.empty())
                family += std::string{"."} + base;
            else
                family = base;
            consumed = true;
            break;
        }
        if (!consumed) {
            if (!family.empty())
                family += '.';
            family += token;
        }
        pos = dot + 1;
    }
}

/** One family's series, keyed by label string (may be empty). */
template <typename V> using Family = std::map<std::string, V>;

std::string
bucketBound(std::size_t k)
{
    if (k == 0)
        return "0";
    if (k >= 64)
        return "18446744073709551615"; // 2^64 - 1
    return std::to_string((std::uint64_t{1} << k) - 1);
}

} // namespace

std::string
promEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '"':
            out += "\\\"";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            out.push_back(c);
        }
    }
    return out;
}

std::string
promSanitizeName(const std::string &name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' ||
                        c == ':';
        out.push_back(ok ? c : '_');
    }
    if (!out.empty() && out[0] >= '0' && out[0] <= '9')
        out.insert(out.begin(), '_');
    return out;
}

std::string
renderProm(const MetricsSnapshot &snap, const std::string &prefix)
{
    // Group by family first: Prometheus requires all series of one
    // family to sit together under a single HELP/TYPE header.
    std::map<std::string, Family<std::uint64_t>> counters;
    std::map<std::string, Family<std::int64_t>> gauges;
    std::map<std::string, Family<const HistogramSnapshot *>> hists;

    std::string family, labels;
    for (const auto &[name, v] : snap.counters) {
        splitShardLabel(name, family, labels);
        counters[family][labels] = v;
    }
    for (const auto &[name, v] : snap.gauges) {
        splitShardLabel(name, family, labels);
        gauges[family][labels] = v;
    }
    for (const auto &[name, h] : snap.histograms) {
        splitShardLabel(name, family, labels);
        hists[family][labels] = &h;
    }

    std::string out;
    out.reserve(4096);
    auto header = [&](const std::string &dotted,
                      const std::string &prom_name,
                      const char *type) {
        out += "# HELP " + prom_name + " FracDRAM metric '" +
               promEscape(dotted) + "'\n";
        out += "# TYPE " + prom_name + " ";
        out += type;
        out += '\n';
    };

    for (const auto &[fam, series] : counters) {
        const std::string pn =
            prefix + "_" + promSanitizeName(fam) + "_total";
        header(fam, pn, "counter");
        for (const auto &[lbl, v] : series)
            out += pn + lbl + " " + std::to_string(v) + "\n";
    }
    for (const auto &[fam, series] : gauges) {
        const std::string pn = prefix + "_" + promSanitizeName(fam);
        header(fam, pn, "gauge");
        for (const auto &[lbl, v] : series)
            out += pn + lbl + " " + std::to_string(v) + "\n";
    }
    for (const auto &[fam, series] : hists) {
        const std::string pn = prefix + "_" + promSanitizeName(fam);
        header(fam, pn, "histogram");
        for (const auto &[lbl, h] : series) {
            // Inner labels join the le label: strip the braces.
            const std::string inner =
                lbl.empty() ? ""
                            : lbl.substr(1, lbl.size() - 2) + ",";
            std::size_t last = 0;
            for (std::size_t k = 0; k < h->buckets.size(); ++k)
                if (h->buckets[k] != 0)
                    last = k + 1;
            std::uint64_t cum = 0;
            for (std::size_t k = 0; k < last; ++k) {
                cum += h->buckets[k];
                out += pn + "_bucket{" + inner + "le=\"" +
                       bucketBound(k) + "\"} " +
                       std::to_string(cum) + "\n";
            }
            out += pn + "_bucket{" + inner + "le=\"+Inf\"} " +
                   std::to_string(h->count) + "\n";
            out += pn + "_sum" + lbl + " " +
                   std::to_string(h->sum) + "\n";
            out += pn + "_count" + lbl + " " +
                   std::to_string(h->count) + "\n";
        }
    }
    return out;
}

} // namespace fracdram::telemetry
