/**
 * @file
 * Prometheus text exposition (format 0.0.4) of a MetricsSnapshot.
 *
 * Rendering rules:
 *
 *  - Metric names are sanitized to [a-zA-Z_:][a-zA-Z0-9_:]* (dots
 *    and anything else illegal become underscores) and prefixed with
 *    "fracdram_"; counters additionally get the conventional
 *    "_total" suffix.
 *  - Per-shard metrics ("service.shardN.x") are folded into one
 *    family with a {shard="N"} label, so a scrape of an 8-shard
 *    daemon yields 8 series of one metric instead of 8 metrics -
 *    that is what lets fracdram_top (and any PromQL) aggregate or
 *    fan out per shard.
 *  - Bit-width histograms become native Prometheus histograms: the
 *    cumulative _bucket{le="2^k-1"} series, then _sum and _count.
 *    Trailing empty buckets are elided; the +Inf bucket always
 *    equals _count, as the format requires.
 *  - Every family carries # HELP (the original dotted name) and
 *    # TYPE lines; label values and help text are escaped per the
 *    exposition-format rules.
 *
 * The renderer is a pure function of the snapshot - no locks, no
 * registry access - so the HTTP exposition thread never contends
 * with the recording hot path beyond the snapshot itself.
 */

#ifndef FRACDRAM_TELEMETRY_PROM_HH
#define FRACDRAM_TELEMETRY_PROM_HH

#include <string>

#include "telemetry/metrics.hh"

namespace fracdram::telemetry
{

/** Escape a label value or HELP text: backslash, quote, newline. */
std::string promEscape(const std::string &s);

/**
 * Sanitize one metric name component to Prometheus rules; a leading
 * digit gets an underscore prefix.
 */
std::string promSanitizeName(const std::string &name);

/**
 * Render the whole snapshot in Prometheus text format.
 * @param prefix namespace prepended to every family (no trailing _)
 */
std::string renderProm(const MetricsSnapshot &snap,
                       const std::string &prefix = "fracdram");

} // namespace fracdram::telemetry

#endif // FRACDRAM_TELEMETRY_PROM_HH
