#include "telemetry/report.hh"

#include <algorithm>
#include <cinttypes>
#include <fstream>
#include <sys/stat.h>
#include <vector>

#include "common/logging.hh"
#include "telemetry/trace.hh"

namespace fracdram::telemetry
{

namespace
{

/** JSON string escaping for metric names (quotes and backslashes). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20)
            continue; // metric names never contain control chars
        out.push_back(c);
    }
    return out;
}

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        return false;
    f << content;
    return static_cast<bool>(f);
}

} // namespace

std::string
renderMetricsJson(const MetricsSnapshot &snap)
{
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, v] : snap.counters) {
        out += first ? "\n" : ",\n";
        first = false;
        out += strprintf("    \"%s\": %llu",
                         jsonEscape(name).c_str(),
                         static_cast<unsigned long long>(v));
    }
    out += "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto &[name, v] : snap.gauges) {
        out += first ? "\n" : ",\n";
        first = false;
        out += strprintf("    \"%s\": %lld",
                         jsonEscape(name).c_str(),
                         static_cast<long long>(v));
    }
    out += "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : snap.histograms) {
        out += first ? "\n" : ",\n";
        first = false;
        out += strprintf(
            "    \"%s\": {\"count\": %llu, \"sum\": %llu, "
            "\"min\": %llu, \"max\": %llu, \"mean\": %.3f, "
            "\"p50\": %llu, \"p95\": %llu, \"p99\": %llu, "
            "\"p999\": %llu, \"buckets\": [",
            jsonEscape(name).c_str(),
            static_cast<unsigned long long>(h.count),
            static_cast<unsigned long long>(h.sum),
            static_cast<unsigned long long>(h.min),
            static_cast<unsigned long long>(h.max), h.mean(),
            static_cast<unsigned long long>(h.quantile(0.5)),
            static_cast<unsigned long long>(h.quantile(0.95)),
            static_cast<unsigned long long>(h.quantile(0.99)),
            static_cast<unsigned long long>(h.quantile(0.999)));
        // Trailing zero buckets carry no information; trim them so
        // the report stays readable.
        std::size_t last = 0;
        for (std::size_t k = 0; k < h.buckets.size(); ++k)
            if (h.buckets[k] != 0)
                last = k + 1;
        for (std::size_t k = 0; k < last; ++k) {
            if (k != 0)
                out += ", ";
            out += strprintf("%llu", static_cast<unsigned long long>(
                                         h.buckets[k]));
        }
        out += "]}";
    }
    out += "\n  }\n}\n";
    return out;
}

std::string
renderMetricsCsv(const MetricsSnapshot &snap)
{
    std::string out = "kind,name,field,value\n";
    for (const auto &[name, v] : snap.counters) {
        out += strprintf("counter,%s,value,%llu\n", name.c_str(),
                         static_cast<unsigned long long>(v));
    }
    for (const auto &[name, v] : snap.gauges) {
        out += strprintf("gauge,%s,value,%lld\n", name.c_str(),
                         static_cast<long long>(v));
    }
    for (const auto &[name, h] : snap.histograms) {
        out += strprintf("histogram,%s,count,%llu\n", name.c_str(),
                         static_cast<unsigned long long>(h.count));
        out += strprintf("histogram,%s,sum,%llu\n", name.c_str(),
                         static_cast<unsigned long long>(h.sum));
        out += strprintf("histogram,%s,min,%llu\n", name.c_str(),
                         static_cast<unsigned long long>(h.min));
        out += strprintf("histogram,%s,max,%llu\n", name.c_str(),
                         static_cast<unsigned long long>(h.max));
        out += strprintf("histogram,%s,mean,%.3f\n", name.c_str(),
                         h.mean());
        out += strprintf("histogram,%s,p50,%llu\n", name.c_str(),
                         static_cast<unsigned long long>(
                             h.quantile(0.5)));
        out += strprintf("histogram,%s,p95,%llu\n", name.c_str(),
                         static_cast<unsigned long long>(
                             h.quantile(0.95)));
        out += strprintf("histogram,%s,p99,%llu\n", name.c_str(),
                         static_cast<unsigned long long>(
                             h.quantile(0.99)));
        out += strprintf("histogram,%s,p999,%llu\n", name.c_str(),
                         static_cast<unsigned long long>(
                             h.quantile(0.999)));
    }
    return out;
}

bool
writeReports(const std::string &dir, const std::string &run_name)
{
    if (dir.empty())
        return false;
    ::mkdir(dir.c_str(), 0755); // single level is enough; EEXIST ok
    const auto snap = Metrics::instance().snapshot();
    bool ok = true;
    ok &= writeFile(dir + "/metrics.json", renderMetricsJson(snap));
    ok &= writeFile(dir + "/metrics.csv", renderMetricsCsv(snap));
    ok &= writeChromeTrace(dir + "/trace.json");
    if (ok) {
        inform("telemetry: %s reports written to %s "
               "(metrics.json, metrics.csv, trace.json)",
               run_name.c_str(), dir.c_str());
    } else {
        warn("telemetry: failed writing reports to %s", dir.c_str());
    }
    return ok;
}

void
logSummary(const MetricsSnapshot &snap, const std::string &run_name)
{
    // Top counters by value: enough to see where a run spent its
    // commands/trials without opening the JSON.
    std::vector<std::pair<std::string, std::uint64_t>> top(
        snap.counters.begin(), snap.counters.end());
    std::sort(top.begin(), top.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });
    inform("telemetry summary for %s (%zu counters, %zu histograms)",
           run_name.c_str(), snap.counters.size(),
           snap.histograms.size());
    const std::size_t show = std::min<std::size_t>(top.size(), 12);
    for (std::size_t i = 0; i < show; ++i) {
        inform("  %-44s %12llu", top[i].first.c_str(),
               static_cast<unsigned long long>(top[i].second));
    }
    for (const auto &[name, h] : snap.histograms) {
        if (h.count == 0)
            continue;
        inform("  %-44s n=%llu mean=%.0f p99=%llu max=%llu",
               name.c_str(),
               static_cast<unsigned long long>(h.count), h.mean(),
               static_cast<unsigned long long>(h.quantile(0.99)),
               static_cast<unsigned long long>(h.max));
    }
}

RunScope::RunScope(std::string run_name, std::string out_dir)
    : runName_(std::move(run_name))
{
    const std::string env_dir = initFromEnv();
    if (!out_dir.empty()) {
        setEnabled(true);
        outDir_ = std::move(out_dir);
    } else {
        outDir_ = env_dir;
    }
}

RunScope::~RunScope()
{
    if (!enabled())
        return;
    if (!outDir_.empty())
        writeReports(outDir_, runName_);
    // The summary goes through the locked writer even when inform()
    // chatter is globally off: flip verbosity just for these lines.
    const bool was_verbose = verbose();
    setVerbose(true);
    logSummary(Metrics::instance().snapshot(), runName_);
    setVerbose(was_verbose);
}

} // namespace fracdram::telemetry
