/**
 * @file
 * Run reports: serialize a metrics snapshot as JSON / CSV, write the
 * Chrome trace alongside, and print a human-readable summary through
 * the locked log writer.
 *
 * RunScope is the one-liner drivers use:
 *
 *     telemetry::RunScope telem("bench_trng", out_dir);
 *
 * enables telemetry when out_dir is non-empty (or FRACDRAM_TELEMETRY
 * asks for it), and at scope exit writes <dir>/metrics.json,
 * <dir>/metrics.csv and <dir>/trace.json plus an inform() summary.
 */

#ifndef FRACDRAM_TELEMETRY_REPORT_HH
#define FRACDRAM_TELEMETRY_REPORT_HH

#include <string>

#include "telemetry/metrics.hh"

namespace fracdram::telemetry
{

/** Metrics snapshot as a JSON object (counters/gauges/histograms). */
std::string renderMetricsJson(const MetricsSnapshot &snap);

/** Metrics snapshot as CSV rows: kind,name,field,value. */
std::string renderMetricsCsv(const MetricsSnapshot &snap);

/**
 * Write metrics.json, metrics.csv and trace.json into @p dir
 * (created if missing).
 * @return false when any file could not be written
 */
bool writeReports(const std::string &dir, const std::string &run_name);

/** Print the top counters and timer totals through inform(). */
void logSummary(const MetricsSnapshot &snap,
                const std::string &run_name);

/**
 * RAII run context for CLIs and benches. Construction resolves the
 * enabled state (explicit @p out_dir beats FRACDRAM_TELEMETRY);
 * destruction writes reports and logs the summary when enabled.
 */
class RunScope
{
  public:
    explicit RunScope(std::string run_name,
                      std::string out_dir = "");
    ~RunScope();
    RunScope(const RunScope &) = delete;
    RunScope &operator=(const RunScope &) = delete;

    const std::string &outDir() const { return outDir_; }

  private:
    std::string runName_;
    std::string outDir_;
};

} // namespace fracdram::telemetry

#endif // FRACDRAM_TELEMETRY_REPORT_HH
