#include "telemetry/timeseries.hh"

#include <chrono>

#include "common/logging.hh"
#include "telemetry/procstats.hh"

namespace fracdram::telemetry
{

namespace
{

std::int64_t
wallMsNow()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

} // namespace

MetricsHistory::MetricsHistory(const HistoryConfig &cfg) : cfg_(cfg)
{
    ring_.resize(cfg_.capacityPoints ? cfg_.capacityPoints : 1);
}

void
MetricsHistory::start()
{
    if (thread_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(loopMutex_);
        stopping_ = false;
    }
    thread_ = std::thread([this] { loop(); });
}

void
MetricsHistory::stop()
{
    if (!thread_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(loopMutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

void
MetricsHistory::loop()
{
    // Sample immediately so the window starts filling at t=0 (the
    // first call is baseline-only, so the first *point* lands one
    // resolution later).
    sampleOnce();
    std::unique_lock<std::mutex> lock(loopMutex_);
    while (!stopping_) {
        if (cv_.wait_for(lock,
                         std::chrono::milliseconds(cfg_.resolutionMs),
                         [this] { return stopping_; }))
            break;
        lock.unlock();
        sampleOnce();
        lock.lock();
    }
}

void
MetricsHistory::sampleOnce()
{
    if (cfg_.sampleProcess)
        sampleProcessGauges();

    auto snap = Metrics::instance().snapshot();
    if (!primed_) {
        prev_ = std::move(snap);
        primed_ = true;
        return;
    }

    HistoryPoint pt;
    pt.monoNs = nowNs();
    pt.wallMs = wallMsNow();
    for (const auto &[name, v] : snap.counters) {
        const auto it = prev_.counters.find(name);
        const std::uint64_t before =
            it != prev_.counters.end() ? it->second : 0;
        pt.counterDeltas[name] = v >= before ? v - before : 0;
    }
    pt.gauges = snap.gauges;
    for (const auto &[name, h] : snap.histograms) {
        HistogramSnapshot win;
        const auto it = prev_.histograms.find(name);
        win = it != prev_.histograms.end() ? h.deltaSince(it->second)
                                           : h;
        HistoryHistStat st;
        st.count = win.count;
        st.sum = win.sum;
        st.p50 = win.quantile(0.50);
        st.p99 = win.quantile(0.99);
        pt.histograms[name] = st;
    }
    prev_ = std::move(snap);

    {
        std::lock_guard<std::mutex> lock(ringMutex_);
        ring_[head_] = std::move(pt);
        head_ = (head_ + 1) % ring_.size();
        if (count_ < ring_.size())
            ++count_;
    }
    ++totalSamples_;

    if (cfg_.onSample)
        cfg_.onSample();
}

std::size_t
MetricsHistory::size() const
{
    std::lock_guard<std::mutex> lock(ringMutex_);
    return count_;
}

std::vector<HistoryPoint>
MetricsHistory::lastN(std::size_t n) const
{
    std::lock_guard<std::mutex> lock(ringMutex_);
    const std::size_t take = n < count_ ? n : count_;
    std::vector<HistoryPoint> out;
    out.reserve(take);
    // head_ is the next write slot; the newest point is head_-1.
    for (std::size_t i = 0; i < take; ++i) {
        const std::size_t idx =
            (head_ + ring_.size() - take + i) % ring_.size();
        out.push_back(ring_[idx]);
    }
    return out;
}

void
MetricsHistory::appendPoints(std::string &out, const std::string &name,
                             const std::vector<HistoryPoint> &pts) const
{
    out += '[';
    bool first = true;
    for (const auto &pt : pts) {
        if (const auto c = pt.counterDeltas.find(name);
            c != pt.counterDeltas.end()) {
            out += strprintf("%s{\"t_ms\":%lld,\"value\":%llu}",
                             first ? "" : ",",
                             static_cast<long long>(pt.wallMs),
                             static_cast<unsigned long long>(c->second));
            first = false;
        } else if (const auto g = pt.gauges.find(name);
                   g != pt.gauges.end()) {
            out += strprintf("%s{\"t_ms\":%lld,\"value\":%lld}",
                             first ? "" : ",",
                             static_cast<long long>(pt.wallMs),
                             static_cast<long long>(g->second));
            first = false;
        } else if (const auto h = pt.histograms.find(name);
                   h != pt.histograms.end()) {
            out += strprintf(
                "%s{\"t_ms\":%lld,\"count\":%llu,\"sum\":%llu,"
                "\"p50\":%llu,\"p99\":%llu}",
                first ? "" : ",", static_cast<long long>(pt.wallMs),
                static_cast<unsigned long long>(h->second.count),
                static_cast<unsigned long long>(h->second.sum),
                static_cast<unsigned long long>(h->second.p50),
                static_cast<unsigned long long>(h->second.p99));
            first = false;
        }
    }
    out += ']';
}

std::string
MetricsHistory::queryJson(const std::string &metric,
                          std::size_t points) const
{
    const auto pts = lastN(points);
    // Kind is decided by where the name appears in the newest point
    // that has it; a name can only live in one of the three maps.
    const char *kind = "none";
    for (auto it = pts.rbegin(); it != pts.rend(); ++it) {
        if (it->counterDeltas.count(metric)) {
            kind = "counter";
            break;
        }
        if (it->gauges.count(metric)) {
            kind = "gauge";
            break;
        }
        if (it->histograms.count(metric)) {
            kind = "histogram";
            break;
        }
    }
    std::string out = strprintf(
        "{\"metric\":\"%s\",\"kind\":\"%s\",\"resolution_ms\":%d,"
        "\"points\":",
        metric.c_str(), kind, cfg_.resolutionMs);
    appendPoints(out, metric, pts);
    out += "}\n";
    return out;
}

std::string
MetricsHistory::namesJson() const
{
    const auto pts = lastN(1);
    std::string out = "{\"metrics\":[";
    bool first = true;
    auto emit = [&](const std::string &name) {
        out += strprintf("%s\"%s\"", first ? "" : ",", name.c_str());
        first = false;
    };
    if (!pts.empty()) {
        for (const auto &[name, v] : pts.back().counterDeltas)
            emit(name);
        for (const auto &[name, v] : pts.back().gauges)
            emit(name);
        for (const auto &[name, v] : pts.back().histograms)
            emit(name);
    }
    out += "]}\n";
    return out;
}

std::string
MetricsHistory::renderAllJson(const std::string &prefix,
                              std::size_t points) const
{
    const auto pts = lastN(points);
    std::string out = strprintf(
        "{\"resolution_ms\":%d,\"points_resident\":%zu,\"series\":{",
        cfg_.resolutionMs, pts.size());
    bool first = true;
    auto emitSeries = [&](const std::string &name) {
        if (prefix.size() && name.rfind(prefix, 0) != 0)
            return;
        out += strprintf("%s\"%s\":", first ? "" : ",", name.c_str());
        appendPoints(out, name, pts);
        first = false;
    };
    if (!pts.empty()) {
        // The newest point names every live series; older points may
        // lack late-created metrics, which appendPoints just skips.
        for (const auto &[name, v] : pts.back().counterDeltas)
            emitSeries(name);
        for (const auto &[name, v] : pts.back().gauges)
            emitSeries(name);
        for (const auto &[name, v] : pts.back().histograms)
            emitSeries(name);
    }
    out += "}}";
    return out;
}

} // namespace fracdram::telemetry
