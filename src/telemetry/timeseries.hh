/**
 * @file
 * In-process metrics history: a bounded ring of periodic
 * MetricsSnapshot deltas, so recent trends (req/s, p99, queue depth)
 * survive scraper gaps and can be replayed into a postmortem bundle.
 *
 * A sampler thread (same cv-wait shape as the SLO watchdog) wakes
 * every `resolutionMs`, snapshots the registry, and records one
 * HistoryPoint into a fixed-capacity overwrite ring:
 *
 *  - counters are stored as *deltas* against the previous snapshot
 *    (saturating at 0), so a point answers "how many in this tick"
 *    and req/s falls out as delta / resolution;
 *  - gauges are stored as sampled values;
 *  - histograms are reduced to windowed {count, sum, p50, p99} via
 *    HistogramSnapshot::deltaSince - full bucket arrays per tick
 *    would multiply memory by ~65x for no query we actually serve.
 *
 * The first sample only establishes the baseline (the registry may
 * hold lifetime totals from before the history existed); it records
 * no point. Capacity is fixed at construction: 300 points at 1s
 * resolution is the default 5-minute window, and memory stays bounded
 * no matter how long the daemon runs.
 *
 * Queries serialize straight to JSON (`queryJson`) for the /history
 * endpoint; `renderAllJson` emits every series under a prefix in one
 * object for the flight recorder. Like the watchdog, the sampler only
 * reads the global registry, so tests drive sampleOnce() directly.
 */

#ifndef FRACDRAM_TELEMETRY_TIMESERIES_HH
#define FRACDRAM_TELEMETRY_TIMESERIES_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.hh"

namespace fracdram::telemetry
{

struct HistoryConfig
{
    int resolutionMs = 1000;      //!< tick period
    std::size_t capacityPoints = 300; //!< ring size (default 5 min)
    bool sampleProcess = true;    //!< refresh process.* gauges per tick
    /** Called after each recorded point (flight recorder refreshes its
     *  signal-safe buffer here). Runs on the sampler thread. */
    std::function<void()> onSample;
};

/** Windowed reduction of one histogram over one tick. */
struct HistoryHistStat
{
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;
};

/** One tick of history: deltas/values for every metric that existed. */
struct HistoryPoint
{
    std::uint64_t monoNs = 0; //!< telemetry::nowNs() at sample time
    std::int64_t wallMs = 0;  //!< unix epoch milliseconds
    std::map<std::string, std::uint64_t> counterDeltas;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, HistoryHistStat> histograms;
};

class MetricsHistory
{
  public:
    explicit MetricsHistory(const HistoryConfig &cfg);
    ~MetricsHistory() { stop(); }
    MetricsHistory(const MetricsHistory &) = delete;
    MetricsHistory &operator=(const MetricsHistory &) = delete;

    /** Start the sampler thread (no-op when already running). */
    void start();

    /** Stop and join the sampler thread; idempotent. */
    void stop();

    /**
     * Take one sample right now: baseline on the first call, a
     * recorded point afterwards. The thread calls this on its
     * interval; tests call it directly for determinism.
     */
    void sampleOnce();

    /** Points currently resident (<= capacity). */
    std::size_t size() const;

    /** Points recorded over the lifetime (wraparound diagnostics). */
    std::uint64_t totalSamples() const { return totalSamples_; }

    /** The most recent n points, oldest first. */
    std::vector<HistoryPoint> lastN(std::size_t n) const;

    /**
     * One series as JSON:
     *   {"metric":"...","kind":"counter|gauge|histogram",
     *    "resolution_ms":N,"points":[{"t_ms":..,"value":..},..]}
     * Histogram points carry {"t_ms","count","sum","p50","p99"}.
     * An unknown metric yields "kind":"none" with an empty points
     * array - the endpoint stays 200 so dashboards can probe freely.
     */
    std::string queryJson(const std::string &metric,
                          std::size_t points) const;

    /** {"metrics":[...names...]} across all three kinds. */
    std::string namesJson() const;

    /**
     * Every series whose name starts with @p prefix, rendered as one
     * JSON object {"resolution_ms":N,"series":{"name":[points],..}}.
     * The flight recorder embeds this for the `service.` families.
     */
    std::string renderAllJson(const std::string &prefix,
                              std::size_t points) const;

    const HistoryConfig &config() const { return cfg_; }

  private:
    void loop();
    void appendPoints(std::string &out, const std::string &name,
                      const std::vector<HistoryPoint> &pts) const;

    const HistoryConfig cfg_;
    std::thread thread_;
    std::mutex loopMutex_; //!< wakes the loop early on stop()
    std::condition_variable cv_;
    bool stopping_ = false;

    mutable std::mutex ringMutex_; //!< guards ring_/head_/count_
    std::vector<HistoryPoint> ring_;
    std::size_t head_ = 0;  //!< next write slot
    std::size_t count_ = 0; //!< resident points
    std::atomic<std::uint64_t> totalSamples_{0};

    // Sampling state, touched only from sampleOnce() callers.
    MetricsSnapshot prev_;
    bool primed_ = false;
};

} // namespace fracdram::telemetry

#endif // FRACDRAM_TELEMETRY_TIMESERIES_HH
