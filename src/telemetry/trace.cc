#include "telemetry/trace.hh"

#include <cstdio>
#include <mutex>
#include <set>
#include <vector>

namespace fracdram::telemetry
{

namespace
{

/** Event phases we emit (Chrome trace_event "ph" field). */
enum class Phase : char
{
    Complete = 'X',
    Instant = 'i',
};

/** Which timeline an event lands on (doubles as the trace pid). */
enum class Domain : std::uint8_t
{
    Wall = 1,    //!< steady-clock spans, one lane per OS thread
    Cycle = 2,   //!< SoftMC commands, ts already cycle-derived
    Request = 3, //!< service request stages, one lane per request id
};

struct Event
{
    const char *name;
    std::uint64_t ts_ns;
    std::uint64_t dur_ns;
    Phase phase;
    Domain domain;
    std::uint32_t lane; //!< Cycle/Request domains: the trace tid
};

/** Per-thread buffer, owned by the sink, survives its thread. */
struct ThreadBuffer
{
    std::uint32_t tid;
    std::string name;
    std::vector<Event> events;
    std::uint64_t dropped = 0;
};

// Budgets: wall-clock spans and cycle-domain command events share a
// per-thread buffer; commands dominate, so the cap is sized for them.
constexpr std::size_t kMaxEventsPerThread = 1 << 17; // ~130k

struct Sink
{
    std::mutex mutex;
    std::vector<ThreadBuffer *> buffers;
    std::set<std::string> names; //!< interned dynamic names
    std::uint32_t nextTid = 1;
    std::uint64_t epochNs = nowNs();
};

Sink &
sink()
{
    static Sink *s = new Sink(); // leaked like the metrics registry
    return *s;
}

ThreadBuffer &
localBuffer()
{
    thread_local ThreadBuffer *buf = [] {
        auto *b = new ThreadBuffer();
        Sink &s = sink();
        std::lock_guard<std::mutex> lock(s.mutex);
        b->tid = s.nextTid++;
        s.buffers.push_back(b);
        return b;
    }();
    return *buf;
}

void
push(const Event &ev)
{
    ThreadBuffer &buf = localBuffer();
    if (buf.events.size() >= kMaxEventsPerThread) {
        ++buf.dropped;
        return;
    }
    buf.events.push_back(ev);
}

CounterId
droppedCounter()
{
    static const CounterId id =
        Metrics::instance().counter("telemetry.trace.dropped");
    return id;
}

} // namespace

const char *
internName(const std::string &name)
{
    Sink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.names.insert(name).first->c_str();
}

void
setThreadName(const std::string &name)
{
    ThreadBuffer &buf = localBuffer();
    Sink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    buf.name = name;
}

void
traceSpan(const char *name, std::uint64_t start_ns,
          std::uint64_t dur_ns)
{
    if (!enabled())
        return;
    push({name, start_ns, dur_ns, Phase::Complete, Domain::Wall, 0});
}

void
traceInstant(const char *name)
{
    if (!enabled())
        return;
    push({name, nowNs(), 0, Phase::Instant, Domain::Wall, 0});
}

void
traceCommand(const char *name, std::uint64_t cycle,
             std::uint64_t dur_cycles, std::uint32_t lane)
{
    if (!enabled())
        return;
    // 2.5 ns per memory cycle; store ns so the writer shares one
    // microsecond conversion.
    push({name, cycle * 5 / 2, dur_cycles * 5 / 2, Phase::Complete,
          Domain::Cycle, lane});
}

void
traceRequestSpan(const char *stage, std::uint64_t request_id,
                 std::uint64_t start_ns, std::uint64_t dur_ns)
{
    if (!enabled())
        return;
    // Fold the id into the 32-bit trace tid; a rare lane collision
    // just shares a row, it never corrupts the trace.
    const auto lane = static_cast<std::uint32_t>(
        request_id ^ (request_id >> 32));
    push({stage, start_ns, dur_ns, Phase::Complete, Domain::Request,
          lane});
}

bool
writeChromeTrace(const std::string &path)
{
    Sink &s = sink();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;

    std::lock_guard<std::mutex> lock(s.mutex);
    std::fputs("[\n", f);
    bool first = true;
    auto comma = [&] {
        if (!first)
            std::fputs(",\n", f);
        first = false;
    };

    // Process + thread metadata so Perfetto labels the lanes.
    comma();
    std::fputs("{\"ph\":\"M\",\"pid\":1,\"tid\":0,"
               "\"name\":\"process_name\",\"args\":{\"name\":"
               "\"fracdram wall clock\"}}",
               f);
    comma();
    std::fputs("{\"ph\":\"M\",\"pid\":2,\"tid\":0,"
               "\"name\":\"process_name\",\"args\":{\"name\":"
               "\"softmc command stream (2.5ns cycles)\"}}",
               f);
    comma();
    std::fputs("{\"ph\":\"M\",\"pid\":3,\"tid\":0,"
               "\"name\":\"process_name\",\"args\":{\"name\":"
               "\"service requests (one lane per request id)\"}}",
               f);
    std::uint64_t dropped = 0;
    for (const ThreadBuffer *buf : s.buffers) {
        dropped += buf->dropped;
        if (!buf->name.empty()) {
            comma();
            std::fprintf(f,
                         "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,"
                         "\"name\":\"thread_name\",\"args\":{"
                         "\"name\":\"%s\"}}",
                         buf->tid, buf->name.c_str());
        }
    }

    const std::uint64_t epoch = s.epochNs;
    for (const ThreadBuffer *buf : s.buffers) {
        for (const Event &ev : buf->events) {
            comma();
            const bool cycle_ts = ev.domain == Domain::Cycle;
            const std::uint64_t base =
                cycle_ts ? ev.ts_ns
                         : (ev.ts_ns > epoch ? ev.ts_ns - epoch : 0);
            const double ts_us =
                static_cast<double>(base) / 1000.0;
            if (ev.phase == Phase::Complete) {
                const double dur_us =
                    static_cast<double>(ev.dur_ns) / 1000.0;
                std::fprintf(
                    f,
                    "{\"ph\":\"X\",\"pid\":%d,\"tid\":%u,"
                    "\"name\":\"%s\",\"ts\":%.3f,\"dur\":%.3f}",
                    static_cast<int>(ev.domain),
                    ev.domain == Domain::Wall ? buf->tid : ev.lane,
                    ev.name, ts_us, dur_us);
            } else {
                std::fprintf(
                    f,
                    "{\"ph\":\"i\",\"pid\":1,\"tid\":%u,"
                    "\"name\":\"%s\",\"ts\":%.3f,\"s\":\"t\"}",
                    buf->tid, ev.name, ts_us);
            }
        }
    }
    std::fputs("\n]\n", f);
    const bool ok = std::fclose(f) == 0;
    if (dropped != 0)
        Metrics::instance().add(droppedCounter(), dropped);
    return ok;
}

void
resetTrace()
{
    Sink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    for (ThreadBuffer *buf : s.buffers) {
        buf->events.clear();
        buf->dropped = 0;
    }
    s.epochNs = nowNs();
}

std::size_t
traceEventCount()
{
    Sink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    std::size_t n = 0;
    for (const ThreadBuffer *buf : s.buffers)
        n += buf->events.size();
    return n;
}

} // namespace fracdram::telemetry
