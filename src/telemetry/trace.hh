/**
 * @file
 * Structured trace sink emitting Chrome trace_event JSON
 * (chrome://tracing / Perfetto "JSON array format").
 *
 * Two timelines share one file:
 *
 *  - *Wall-clock* events (pid 1): spans for studies, kernels, worker
 *    tasks, and controller sequences, stamped from the steady clock.
 *    Each OS thread is a lane; worker threads name their lanes via
 *    setThreadName() so the per-worker utilization is visible.
 *  - *DRAM-cycle* events (pid 2): the SoftMC command stream, stamped
 *    from the controller's cycle clock (2.5 ns per cycle). This is
 *    the software analogue of SoftMC's command-level observability:
 *    every ACT/PRE/READ/WRITE of an out-of-spec sequence is visible
 *    with its exact issue cycle.
 *
 * Per-thread event buffers are bounded (spans and commands have
 * separate budgets); once full, further events are dropped and
 * counted in the `telemetry.trace.dropped` metric - a truncated
 * trace is fine for inspection, silent unbounded memory growth is
 * not. Like the metrics shards, buffers are owned by the sink and
 * survive their thread, so flushing after a ThreadPool rebuild still
 * sees every lane.
 *
 * Dynamic names (sequence labels) are interned; TraceSpan/event
 * callers otherwise pass string literals.
 */

#ifndef FRACDRAM_TELEMETRY_TRACE_HH
#define FRACDRAM_TELEMETRY_TRACE_HH

#include <cstdint>
#include <string>

#include "telemetry/metrics.hh"

namespace fracdram::telemetry
{

/** Interned, stable copy of a dynamic event name. */
const char *internName(const std::string &name);

/** Name the calling thread's lane in the trace (e.g. "worker-3"). */
void setThreadName(const std::string &name);

/**
 * Record a complete wall-clock span [start_ns, start_ns + dur_ns) on
 * the calling thread's lane. @p name must be a literal or interned.
 */
void traceSpan(const char *name, std::uint64_t start_ns,
               std::uint64_t dur_ns);

/** Record an instant wall-clock event on the calling thread's lane. */
void traceInstant(const char *name);

/**
 * Record one SoftMC command on the DRAM-cycle timeline. @p lane
 * separates concurrent controllers (one lane per controller works
 * well). @p name must be a literal or interned.
 */
void traceCommand(const char *name, std::uint64_t cycle,
                  std::uint64_t dur_cycles, std::uint32_t lane);

/**
 * Record one stage span of a traced service request on the
 * per-request timeline (pid 3): each request id gets its own lane,
 * so a request's parse / queue-wait / batch / generate / write
 * stages line up as one row in Perfetto. Wall-clock timestamps,
 * same epoch as traceSpan. @p stage must be a literal or interned.
 */
void traceRequestSpan(const char *stage, std::uint64_t request_id,
                      std::uint64_t start_ns, std::uint64_t dur_ns);

/**
 * Serialize every buffered event as Chrome trace JSON.
 * @return false when the file could not be written
 */
bool writeChromeTrace(const std::string &path);

/** Drop all buffered events (test hook / fresh run). */
void resetTrace();

/** Buffered event count (tests). */
std::size_t traceEventCount();

/**
 * RAII wall-clock span. Arms only when telemetry is enabled at
 * construction; the name must outlive the sink (string literal or
 * internName()).
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name)
        : name_(name), armed_(enabled()),
          start_(armed_ ? nowNs() : 0)
    {
    }
    ~TraceSpan()
    {
        if (armed_)
            traceSpan(name_, start_, nowNs() - start_);
    }
    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    const char *name_;
    bool armed_;
    std::uint64_t start_;
};

} // namespace fracdram::telemetry

#endif // FRACDRAM_TELEMETRY_TRACE_HH
