#include "trng/quac_trng.hh"

#include "common/logging.hh"
#include <cmath>

#include "common/sha256.hh"
#include "core/multi_row.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace fracdram::trng
{

namespace
{

/** QUAC-TRNG pipeline counters. */
struct TrngCounters
{
    telemetry::CounterId rawSamples, bits, blocks;
    telemetry::HistogramId generateNs;

    TrngCounters()
    {
        auto &m = telemetry::Metrics::instance();
        rawSamples = m.counter("trng.raw_samples");
        bits = m.counter("trng.bits");
        blocks = m.counter("trng.blocks");
        generateNs = m.histogram("trng.generate_ns");
    }
};

const TrngCounters &
trngCounters()
{
    static const TrngCounters c;
    return c;
}

} // namespace

QuacTrng::QuacTrng(softmc::MemoryController &mc, BankAddr bank,
                   RowAddr r1, RowAddr r2)
    : mc_(mc), bank_(bank), r1_(r1), r2_(r2)
{
    const auto opened = core::plannedOpenedRows(mc.chip(), r1, r2);
    fatal_if(opened.size() != 4,
             "QUAC-TRNG needs a four-row activation; pair (%u,%u) "
             "opens %zu row(s) on group %s",
             r1, r2, opened.size(),
             sim::groupName(mc.chip().group()).c_str());
    for (const auto &o : opened) {
        // The two-ones/two-zeros pattern: ones in R1 and the AND row.
        initRows_.push_back(
            {o.row, o.role == sim::RowRole::FirstAct ||
                        o.role == sim::RowRole::ImplicitAnd});
    }
}

BitVector
QuacTrng::rawSample()
{
    // The activation plan is a pure function of the chip geometry and
    // the row pair; reuse the one computed at construction instead of
    // re-planning per sample.
    for (const auto &r : initRows_)
        mc_.fillRowVoltage(bank_, r.row, r.high);
    return core::multiRowActivate(mc_, bank_, r1_, r2_);
}

void
QuacTrng::setAssumedEntropyPerSample(double bits)
{
    panic_if(bits <= 0.0, "entropy assumption must be positive");
    assumedEntropyPerSample_ = bits;
}

std::size_t
QuacTrng::samplesPerBlock() const
{
    // Condition 2 x 256 bits of assumed entropy into each 256-bit
    // output block (a 2x safety factor, like conservative TRNG
    // practice).
    return static_cast<std::size_t>(
        std::ceil(512.0 / assumedEntropyPerSample_));
}

BitVector
QuacTrng::generate(std::size_t bits)
{
    const auto &tc = trngCounters();
    const telemetry::ScopedTimer timer(tc.generateNs);
    const telemetry::TraceSpan span("trng generate");
    BitVector out;
    rawSamplesUsed_ = 0;
    const std::size_t per_block = samplesPerBlock();

    while (out.size() < bits) {
        telemetry::count(tc.blocks);
        Sha256 hasher;
        bool any_flip = false;
        BitVector prev;
        for (std::size_t s = 0; s < per_block; ++s) {
            const BitVector sample = rawSample();
            ++rawSamplesUsed_;
            if (!prev.empty())
                any_flip |= !(sample == prev);
            prev = sample;
            hasher.updateBits(sample);
        }
        // A fully deterministic array carries no entropy; refuse to
        // emit "random" bits from it.
        fatal_if(!any_flip, "no metastable columns found; this module "
                            "yields no entropy");
        const auto digest = hasher.finish();
        for (const auto byte : digest) {
            for (int bit = 0; bit < 8 && out.size() < bits; ++bit)
                out.pushBack((byte >> bit) & 1);
        }
    }
    bitsGenerated_ = out.size();
    if (telemetry::enabled()) {
        telemetry::count(tc.rawSamples, rawSamplesUsed_);
        telemetry::count(tc.bits, bitsGenerated_);
    }
    return out;
}

Cycles
QuacTrng::cyclesPerSample() const
{
    // Four row initializations (in-DRAM copies from reserved pattern
    // rows in a pipelined implementation; modeled as 4 x 18 cycles),
    // the activation sequence, and the burst readout.
    const Cycles init = 4 * 18;
    const Cycles act =
        core::buildMultiRowSequence(bank_, r1_, r2_, false)
            .lengthCycles();
    return init + act + mc_.readRowCycles();
}

double
QuacTrng::throughputMbps() const
{
    if (rawSamplesUsed_ == 0)
        return 0.0;
    const double bits_per_sample =
        static_cast<double>(bitsGenerated_) /
        static_cast<double>(rawSamplesUsed_);
    const double sample_seconds =
        static_cast<double>(cyclesPerSample()) * memCycleNs * 1e-9;
    return bits_per_sample / sample_seconds / 1e6;
}

} // namespace fracdram::trng
