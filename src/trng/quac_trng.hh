/**
 * @file
 * QUAC-TRNG-style true random number generator on the four-row
 * activation (Olgun et al., ISCA'21 - the related work whose DDR4
 * findings the paper builds on, Secs. II-D and VII).
 *
 * Initializing the four simultaneously-opened rows with two ones and
 * two zeros parks the bit-lines near the sense threshold; columns
 * whose static margin is inside the noise band resolve *differently
 * on every activation*. Per-activation randomness has two parts:
 * independent per-column sense noise, and wordline-timing jitter
 * shared by all columns of one activation - so raw samples carry
 * real but *correlated* entropy. Like the original QUAC-TRNG, the
 * generator therefore conditions blocks of raw samples with SHA-256,
 * assuming a deliberately conservative entropy per sample.
 */

#ifndef FRACDRAM_TRNG_QUAC_TRNG_HH
#define FRACDRAM_TRNG_QUAC_TRNG_HH

#include <cstddef>

#include "common/bitvec.hh"
#include "common/types.hh"
#include "softmc/controller.hh"

namespace fracdram::trng
{

/**
 * True random number generator over one module.
 */
class QuacTrng
{
  public:
    /**
     * @param mc controller (enforcement must be off); the module must
     *        support four-row activation (groups B, C, D, M)
     * @param bank bank holding the generator quadruple
     * @param r1 first activated row (default 8: quadruple {0,1,8,9})
     * @param r2 second activated row
     */
    explicit QuacTrng(softmc::MemoryController &mc, BankAddr bank = 0,
                      RowAddr r1 = 8, RowAddr r2 = 1);

    /**
     * One raw sample: re-initialize the quadruple with the two-ones/
     * two-zeros pattern, run the full four-row activation, read the
     * sensed result. Deterministic columns repeat; metastable columns
     * flip randomly.
     */
    BitVector rawSample();

    /**
     * Generate @p bits unbiased random bits: SHA-256 over blocks of
     * raw samples, sized by the assumed entropy per sample.
     */
    BitVector generate(std::size_t bits);

    /**
     * Conservative entropy assumption (bits per raw sample) used to
     * size the conditioning blocks. Default 4.
     */
    void setAssumedEntropyPerSample(double bits);

    /** Raw samples conditioned into each 256-bit output block. */
    std::size_t samplesPerBlock() const;

    /** Raw samples consumed by the last generate() call. */
    std::size_t rawSamplesUsed() const { return rawSamplesUsed_; }

    /** Memory cycles one raw sample costs on the bus. */
    Cycles cyclesPerSample() const;

    /**
     * Model throughput in Mbit/s: extracted bits per DRAM bus time,
     * measured over the last generate() call.
     */
    double throughputMbps() const;

  private:
    /** One row of the activated quadruple and its init pattern. */
    struct InitRow
    {
        RowAddr row;
        bool high; //!< ones in R1 and the AND row, zeros elsewhere
    };

    softmc::MemoryController &mc_;
    BankAddr bank_;
    RowAddr r1_, r2_;
    std::vector<InitRow> initRows_; //!< cached activation plan
    double assumedEntropyPerSample_ = 4.0;
    std::size_t rawSamplesUsed_ = 0;
    std::size_t bitsGenerated_ = 0;
};

} // namespace fracdram::trng

#endif // FRACDRAM_TRNG_QUAC_TRNG_HH
