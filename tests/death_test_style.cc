/**
 * @file
 * Linked into every test binary. The default "fast" death-test style
 * plain-fork()s; once the parallel trial engine's worker threads
 * exist, the forked child can inherit a locked mutex and deadlock
 * (observed under TSan with FRACDRAM_THREADS > 1). The "threadsafe"
 * style fork+execs, which is safe in a multithreaded process.
 */

#include <gtest/gtest.h>

namespace
{

struct ThreadsafeDeathTests
{
    ThreadsafeDeathTests()
    {
        testing::GTEST_FLAG(death_test_style) = "threadsafe";
    }
} forceThreadsafeStyle;

} // namespace
