/**
 * @file
 * Tests of the analysis harnesses at miniature scale: they must
 * reproduce the paper's qualitative reading of each figure.
 */

#include <gtest/gtest.h>

#include "analysis/capability.hh"
#include "analysis/fmaj_study.hh"
#include "analysis/halfm_study.hh"
#include "analysis/maj3_study.hh"
#include "analysis/puf_study.hh"
#include "analysis/retention_study.hh"
#include "common/logging.hh"

using namespace fracdram;
using namespace fracdram::analysis;

namespace
{

struct Quiet
{
    Quiet() { setVerbose(false); }
} quiet;

} // namespace

TEST(CapabilityScan, MatchesTableI)
{
    const auto rows = scanAllGroups();
    ASSERT_EQ(rows.size(), 12u);
    for (const auto &row : rows) {
        const auto &p = sim::vendorProfile(row.group);
        EXPECT_EQ(row.probed.frac, p.supportsFrac)
            << sim::groupName(row.group);
        EXPECT_EQ(row.probed.threeRow, p.supportsThreeRow)
            << sim::groupName(row.group);
        EXPECT_EQ(row.probed.fourRow, p.supportsFourRow)
            << sim::groupName(row.group);
    }
}

TEST(RetentionStudyTest, MonotonicCategoryDominates)
{
    RetentionStudyParams params;
    params.modules = 1;
    params.rowsPerModule = 2;
    params.dram.colsPerRow = 256;
    const auto heat = retentionStudy(sim::DramGroup::B, params);
    EXPECT_EQ(heat.cells, 2u * 256u);
    EXPECT_NEAR(heat.fracLongRetention + heat.fracMonotonicDecrease +
                    heat.fracOther,
                1.0, 1e-9);
    EXPECT_GT(heat.fracMonotonicDecrease, 0.3);
    EXPECT_LT(heat.fracOther, 0.15);
    // PDF columns normalized.
    for (const auto &col : heat.pdf) {
        double sum = 0.0;
        for (const double f : col)
            sum += f;
        EXPECT_NEAR(sum, 1.0, 1e-9);
    }
}

TEST(Maj3StudyTest, ProofComboGrowsWithFracs)
{
    Maj3StudyParams params;
    params.modules = 1;
    params.subarraysPerModule = 1;
    params.dram.colsPerRow = 256;
    params.maxFracs = 3;
    const auto series = maj3Study(params);
    ASSERT_EQ(series.size(), 4u);
    for (const auto &s : series) {
        // Baseline: no proof; with Fracs the proof combo dominates.
        EXPECT_LT(s.combos[0][maj3ProofComboIndex], 0.1) << s.label;
        EXPECT_GT(s.combos[3][maj3ProofComboIndex], 0.8) << s.label;
    }
}

TEST(HalfMStudyTest, MinorityDistinguishable)
{
    HalfMStudyParams params;
    params.modules = 1;
    params.subarraysPerModule = 2;
    params.dram.colsPerRow = 256;
    const auto r = halfMStudy(params);
    EXPECT_GT(r.distinguishableHalf, 0.03);
    EXPECT_LT(r.distinguishableHalf, 0.5);
    // Weak values behave like rails.
    EXPECT_GT(r.maj3WeakOnes[0], 0.5);
    EXPECT_GT(r.maj3WeakZeros[3], 0.5);
    // Normal ones retain; the references are populated.
    EXPECT_GT(r.retentionNormalOne.back(), 0.8);
    ASSERT_EQ(r.retentionFrac5.size(), 6u);
}

TEST(FMajStudyTest, CoverageImprovesWithFracs)
{
    FMajStudyParams params;
    params.modules = 1;
    params.subarraysPerModule = 1;
    params.dram.colsPerRow = 128;
    params.maxFracs = 3;
    const auto r = fmajCoverageStudy(sim::DramGroup::C, params);
    ASSERT_EQ(r.series.size(), 8u);
    EXPECT_FALSE(r.hasBaseline);
    for (const auto &s : r.series) {
        EXPECT_LT(s.byNumFracs[0].mean, 0.5);
        EXPECT_GT(s.byNumFracs[3].mean, s.byNumFracs[0].mean);
    }
}

TEST(FMajStudyTest, GroupBHasBaseline)
{
    FMajStudyParams params;
    params.modules = 1;
    params.subarraysPerModule = 1;
    params.dram.colsPerRow = 128;
    params.maxFracs = 2;
    const auto r = fmajCoverageStudy(sim::DramGroup::B, params);
    EXPECT_TRUE(r.hasBaseline);
    EXPECT_GT(r.baselineMaj3, 0.8);
}

TEST(FMajStudyTest, NonFourRowGroupRejected)
{
    FMajStudyParams params;
    EXPECT_DEATH(fmajCoverageStudy(sim::DramGroup::E, params),
                 "four rows");
}

TEST(FMajStabilityTest, FMajBeatsBaseline)
{
    FMajStabilityParams params;
    params.modules = 1;
    params.subarrays = 2;
    params.trials = 60;
    params.dram.colsPerRow = 128;
    const auto base =
        fmajStabilityStudy(sim::DramGroup::B, true, params);
    const auto fm =
        fmajStabilityStudy(sim::DramGroup::B, false, params);
    EXPECT_LT(fm.meanErrorRate, base.meanErrorRate);
    ASSERT_EQ(base.columnSuccess.size(), 1u);
    // CDF data sorted ascending.
    const auto &cs = base.columnSuccess[0];
    for (std::size_t i = 1; i < cs.size(); ++i)
        EXPECT_GE(cs[i], cs[i - 1]);
}

TEST(FMajStabilityTest, BaselineRequiresGroupB)
{
    FMajStabilityParams params;
    EXPECT_DEATH(fmajStabilityStudy(sim::DramGroup::C, true, params),
                 "group B");
}

TEST(PufStudyTest, IntraFarBelowInter)
{
    PufStudyParams params;
    params.challenges = 4;
    params.dram.colsPerRow = 512;
    const auto r = pufStudy(params);
    EXPECT_EQ(r.groups.size(), 9u); // frac-capable groups A-I
    EXPECT_LT(r.maxIntraHd, 0.15);
    EXPECT_GT(r.minInterHd, 0.2);
    EXPECT_FALSE(r.crossGroupInterHd.empty());
}

TEST(PufEnvStudyTest, RobustAcrossEnvironment)
{
    PufStudyParams params;
    params.modulesPerGroup = 1;
    params.challenges = 3;
    params.dram.colsPerRow = 512;
    const auto r = pufEnvStudy(params);
    EXPECT_LT(r.maxIntraVdd, 0.2);
    EXPECT_GT(r.minInterVdd, 0.3);
    ASSERT_EQ(r.temperatures.size(), 3u);
    EXPECT_LE(r.temperatures[0].meanIntraHd,
              r.temperatures[2].meanIntraHd + 0.02);
}
