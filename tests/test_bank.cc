/**
 * @file
 * White-box tests of the bank state machine and analog model: normal
 * activation, interrupted activation (Frac), multi-row activation,
 * row copy, leakage, and the timing-checker vendors.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "sim/chip.hh"

using namespace fracdram;
using namespace fracdram::sim;

namespace
{

DramParams
smallParams()
{
    DramParams p;
    p.numBanks = 2;
    p.subarraysPerBank = 2;
    p.rowsPerSubarray = 32;
    p.colsPerRow = 256;
    return p;
}

/** Write a full row (voltage domain) through the command interface. */
void
writeRowHigh(DramChip &chip, Cycles &t, BankAddr bank, RowAddr row,
             bool high)
{
    BitVector bits(chip.dramParams().colsPerRow,
                   high ^ chip.rowIsAnti(bank, row));
    chip.act(t, bank, row);
    t += 6;
    chip.write(t, bank, bits);
    t += 10;
    chip.pre(t, bank);
    t += 6;
}

double
meanVoltage(DramChip &chip, BankAddr bank, RowAddr row)
{
    OnlineStats s;
    for (ColAddr c = 0; c < chip.dramParams().colsPerRow; ++c)
        s.add(chip.bank(bank).cellVoltage(row, c));
    return s.mean();
}

} // namespace

class BankTest : public ::testing::Test
{
  protected:
    DramChip chip{DramGroup::B, 1, smallParams()};
    Cycles t = 100;
};

TEST_F(BankTest, WriteSetsFullRails)
{
    writeRowHigh(chip, t, 0, 4, true);
    for (ColAddr c = 0; c < 16; ++c)
        EXPECT_DOUBLE_EQ(chip.bank(0).cellVoltage(4, c), 1.5);
    writeRowHigh(chip, t, 0, 4, false);
    for (ColAddr c = 0; c < 16; ++c)
        EXPECT_DOUBLE_EQ(chip.bank(0).cellVoltage(4, c), 0.0);
}

TEST_F(BankTest, NormalActivationRestoresAndReads)
{
    writeRowHigh(chip, t, 0, 4, true);
    chip.act(t, 0, 4);
    t += 6;
    const BitVector data = chip.read(t, 0);
    t += 8; // close at tRAS so the restore completes
    chip.pre(t, 0);
    t += 6;
    // Row 4 is a true-cell row: high voltage reads as logic one.
    EXPECT_DOUBLE_EQ(data.hammingWeight(), 1.0);
    // The activation restored the full level.
    EXPECT_DOUBLE_EQ(chip.bank(0).cellVoltage(4, 0), 1.5);
}

TEST_F(BankTest, InterruptedActivationStoresFractionalValue)
{
    writeRowHigh(chip, t, 0, 4, true);
    // Frac: ACT then PRE back-to-back.
    chip.pre(t, 0);
    t += 5;
    chip.act(t, 0, 4);
    chip.pre(t + 1, 0);
    t += 10;
    chip.flushAll(t);
    const double mean = meanVoltage(chip, 0, 4);
    EXPECT_LT(mean, 1.45);
    EXPECT_GT(mean, 0.75);
}

TEST_F(BankTest, RepeatedFracConvergesTowardHalfVdd)
{
    writeRowHigh(chip, t, 0, 4, true);
    double prev = meanVoltage(chip, 0, 4);
    for (int i = 0; i < 5; ++i) {
        chip.pre(t, 0);
        t += 5;
        chip.act(t, 0, 4);
        chip.pre(t + 1, 0);
        t += 10;
        chip.flushAll(t);
        const double mean = meanVoltage(chip, 0, 4);
        EXPECT_LT(mean, prev) << "iteration " << i;
        EXPECT_GT(mean, 0.75);
        prev = mean;
    }
    // Five Fracs get the fast cells close to V_dd/2; slow cells keep
    // the row average above it.
    EXPECT_LT(prev, 1.2);
}

TEST_F(BankTest, FracFromZerosApproachesFromBelow)
{
    writeRowHigh(chip, t, 0, 4, false);
    for (int i = 0; i < 3; ++i) {
        chip.pre(t, 0);
        t += 5;
        chip.act(t, 0, 4);
        chip.pre(t + 1, 0);
        t += 10;
    }
    chip.flushAll(t);
    const double mean = meanVoltage(chip, 0, 4);
    EXPECT_GT(mean, 0.05);
    EXPECT_LT(mean, 0.75);
}

TEST_F(BankTest, PerCellFracMonotonicity)
{
    // Voltage of every individual cell decreases monotonically with
    // more Fracs (initial value all ones) - the property behind the
    // paper's Fig. 6 category 2.
    writeRowHigh(chip, t, 0, 4, true);
    std::vector<double> prev(16);
    for (ColAddr c = 0; c < 16; ++c)
        prev[c] = chip.bank(0).cellVoltage(4, c);
    for (int i = 0; i < 4; ++i) {
        chip.pre(t, 0);
        t += 5;
        chip.act(t, 0, 4);
        chip.pre(t + 1, 0);
        t += 10;
        chip.flushAll(t);
        for (ColAddr c = 0; c < 16; ++c) {
            const double v = chip.bank(0).cellVoltage(4, c);
            EXPECT_LE(v, prev[c] + 0.01) << "col " << c;
            // Cells settle toward V_dd/2 plus their own (small)
            // equilibrium offset.
            EXPECT_GE(v, 0.75 - 4.0 *
                             chip.profile().cellFracOffsetSigma);
            prev[c] = v;
        }
    }
}

TEST_F(BankTest, MultiRowActivationComputesSharedResult)
{
    // Rows {0,1,2} open together on group B; all-ones operands give
    // an all-high result restored in every opened row.
    for (const RowAddr r : {0u, 1u, 2u})
        writeRowHigh(chip, t, 0, r, true);
    chip.pre(t, 0);
    t += 5;
    chip.act(t, 0, 1);
    chip.pre(t + 1, 0);
    chip.act(t + 2, 0, 2);
    t += 12;
    chip.flushAll(t);
    for (const RowAddr r : {0u, 1u, 2u})
        EXPECT_GT(meanVoltage(chip, 0, r), 1.45) << "row " << r;
}

TEST_F(BankTest, InterruptedMultiRowLeavesFractionalCells)
{
    // Half-m with two high and two low rows: opened cells end away
    // from the rails.
    writeRowHigh(chip, t, 0, 8, true);  // R1
    writeRowHigh(chip, t, 0, 0, true);  // R3
    writeRowHigh(chip, t, 0, 1, false); // R2
    writeRowHigh(chip, t, 0, 9, false); // R4
    chip.pre(t, 0);
    t += 5;
    chip.act(t, 0, 8);
    chip.pre(t + 1, 0);
    chip.act(t + 2, 0, 1);
    chip.pre(t + 3, 0);
    t += 12;
    chip.flushAll(t);
    // Rows stay between the rails on average.
    const double v0 = meanVoltage(chip, 0, 0);
    EXPECT_GT(v0, 0.05);
    EXPECT_LT(v0, 1.45);
}

TEST_F(BankTest, RowCopy)
{
    // Copy row 20 (all high) -> row 21 (all low). The pair differs in
    // one bit, so the second ACT reconnects both rows to the
    // still-driven bit-lines and row 21 latches row 20's data.
    writeRowHigh(chip, t, 0, 20, true);
    writeRowHigh(chip, t, 0, 21, false);
    chip.pre(t, 0);
    t += 5;
    chip.act(t, 0, 20);
    t += 4; // let the sense amps latch
    chip.pre(t, 0);
    chip.act(t + 1, 0, 21); // 20^21=1: opens {20,21}, copies into 21
    t += 3;
    chip.pre(t, 0);
    t += 6;
    chip.flushAll(t);
    EXPECT_GT(meanVoltage(chip, 0, 21), 1.45);
}

TEST_F(BankTest, LeakageDischargesCells)
{
    writeRowHigh(chip, t, 0, 4, true);
    const double before = meanVoltage(chip, 0, 4);
    chip.advanceTime(3600.0 * 3000.0); // far beyond the tau median
    const double after = meanVoltage(chip, 0, 4);
    EXPECT_LT(after, before * 0.7);
}

TEST_F(BankTest, RefreshRestoresLeakedCells)
{
    writeRowHigh(chip, t, 0, 4, true);
    chip.advanceTime(600.0); // well within retention for most cells
    chip.refresh(t);
    // Most cells should be back at full level.
    OnlineStats s;
    for (ColAddr c = 0; c < chip.dramParams().colsPerRow; ++c)
        s.add(chip.bank(0).cellVoltage(4, c));
    EXPECT_GT(s.mean(), 1.4);
}

TEST_F(BankTest, RefreshDestroysFractionalValues)
{
    writeRowHigh(chip, t, 0, 4, true);
    for (int i = 0; i < 3; ++i) {
        chip.pre(t, 0);
        t += 5;
        chip.act(t, 0, 4);
        chip.pre(t + 1, 0);
        t += 10;
    }
    chip.flushAll(t);
    ASSERT_LT(meanVoltage(chip, 0, 4), 1.2);
    chip.refresh(t);
    // Every cell snapped back to a rail.
    for (ColAddr c = 0; c < 32; ++c) {
        const double v = chip.bank(0).cellVoltage(4, c);
        EXPECT_TRUE(v < 0.01 || v > 1.49) << "col " << c << " v=" << v;
    }
}

TEST_F(BankTest, AntiRowsStoreComplementVoltage)
{
    // Row 5 is odd -> anti cells: logic one is stored as 0 V.
    BitVector ones(chip.dramParams().colsPerRow, true);
    chip.act(t, 0, 5);
    t += 6;
    chip.write(t, 0, ones);
    t += 10;
    chip.pre(t, 0);
    t += 6;
    EXPECT_DOUBLE_EQ(chip.bank(0).cellVoltage(5, 0), 0.0);
    // And reads back as logic one.
    chip.act(t, 0, 5);
    t += 6;
    const BitVector data = chip.read(t, 0);
    EXPECT_TRUE(data.get(0));
}

TEST(BankChecker, TimingCheckerDropsFrac)
{
    DramChip chip(DramGroup::J, 1, smallParams());
    Cycles t = 100;
    writeRowHigh(chip, t, 0, 4, true);
    // Attempt a Frac: the PRE is dropped (tRAS unmet), the activation
    // completes normally, the cells stay at full level.
    chip.pre(t, 0);
    t += 5;
    chip.act(t, 0, 4);
    chip.pre(t + 1, 0); // dropped
    t += 30;
    chip.pre(t, 0); // legal close (tRAS satisfied)
    t += 6;
    chip.flushAll(t);
    EXPECT_DOUBLE_EQ(chip.bank(0).cellVoltage(4, 0), 1.5);
}

TEST(BankChecker, TimingCheckerBlocksMultiRow)
{
    DramChip chip(DramGroup::J, 1, smallParams());
    Cycles t = 100;
    writeRowHigh(chip, t, 0, 1, true);
    writeRowHigh(chip, t, 0, 2, false);
    chip.pre(t, 0);
    t += 5;
    chip.act(t, 0, 1);
    chip.pre(t + 1, 0);    // dropped
    chip.act(t + 2, 0, 2); // dropped (bank still open)
    t += 30;
    chip.pre(t, 0);
    t += 6;
    chip.flushAll(t);
    // Nothing shared: both rows keep their data.
    EXPECT_GT(meanVoltage(chip, 0, 1), 1.45);
    EXPECT_LT(meanVoltage(chip, 0, 2), 0.05);
}

TEST_F(BankTest, DiscardRowForgetsState)
{
    writeRowHigh(chip, t, 0, 4, true);
    EXPECT_TRUE(chip.bank(0).rowAllocated(4));
    chip.bank(0).discardRow(4);
    EXPECT_FALSE(chip.bank(0).rowAllocated(4));
}

TEST_F(BankTest, StartupContentIsMixed)
{
    // Never-written rows power up with arbitrary (but deterministic)
    // data.
    OnlineStats s;
    for (ColAddr c = 0; c < chip.dramParams().colsPerRow; ++c)
        s.add(chip.bank(1).cellVoltage(30, c));
    EXPECT_GT(s.mean(), 0.3);
    EXPECT_LT(s.mean(), 1.2);
}

TEST_F(BankTest, RestoreTruncationLeavesPartialCharge)
{
    // Closing a row before tRAS freezes a partial restore level
    // (refs [17,18] of the paper); a full-tRAS close restores fully.
    writeRowHigh(chip, t, 0, 4, true);
    chip.act(t, 0, 4);
    chip.pre(t + 6, 0); // well before fullRestoreCycles (14)
    t += 20;
    chip.flushAll(t);
    const double truncated = meanVoltage(chip, 0, 4);
    EXPECT_GT(truncated, 0.8);
    EXPECT_LT(truncated, 1.45);

    chip.act(t, 0, 4);
    chip.pre(t + 14, 0); // exactly tRAS
    t += 30;
    chip.flushAll(t);
    EXPECT_GT(meanVoltage(chip, 0, 4), 1.45);
}

TEST_F(BankTest, RestoreTruncationMonotoneInOpenTime)
{
    writeRowHigh(chip, t, 0, 4, true);
    double prev = 0.0;
    for (const Cycles open_for : {4u, 6u, 9u, 12u, 14u}) {
        chip.act(t, 0, 4);
        chip.pre(t + open_for, 0);
        t += open_for + 20;
        chip.flushAll(t);
        const double v = meanVoltage(chip, 0, 4);
        EXPECT_GE(v, prev - 1e-9) << "open for " << open_for;
        prev = v;
    }
    EXPECT_GT(prev, 1.45); // full restore at tRAS
}
