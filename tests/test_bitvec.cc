/**
 * @file
 * Unit tests for BitVector.
 */

#include <gtest/gtest.h>

#include "common/bitvec.hh"

using namespace fracdram;

TEST(BitVector, ConstructAndFill)
{
    BitVector v(100, false);
    EXPECT_EQ(v.size(), 100u);
    EXPECT_EQ(v.popcount(), 0u);
    v.fill(true);
    EXPECT_EQ(v.popcount(), 100u);
    EXPECT_DOUBLE_EQ(v.hammingWeight(), 1.0);
}

TEST(BitVector, SetGet)
{
    BitVector v(130);
    v.set(0, true);
    v.set(64, true); // word boundary
    v.set(129, true);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(129));
    EXPECT_FALSE(v.get(1));
    EXPECT_EQ(v.popcount(), 3u);
    v.set(64, false);
    EXPECT_FALSE(v.get(64));
}

TEST(BitVector, PushBackAcrossWords)
{
    BitVector v;
    for (int i = 0; i < 200; ++i)
        v.pushBack(i % 3 == 0);
    EXPECT_EQ(v.size(), 200u);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(v.get(i), i % 3 == 0) << i;
}

TEST(BitVector, Append)
{
    BitVector a = BitVector::fromString("101");
    BitVector b = BitVector::fromString("0011");
    a.append(b);
    EXPECT_EQ(a.toString(), "1010011");
}

TEST(BitVector, FromToString)
{
    const std::string s = "1100101110";
    EXPECT_EQ(BitVector::fromString(s).toString(), s);
}

TEST(BitVector, HammingDistance)
{
    const auto a = BitVector::fromString("10101");
    const auto b = BitVector::fromString("10010");
    EXPECT_EQ(a.hammingDistance(b), 3u);
    EXPECT_EQ(a.hammingDistance(a), 0u);
}

TEST(BitVector, Xor)
{
    const auto a = BitVector::fromString("1100");
    const auto b = BitVector::fromString("1010");
    EXPECT_EQ((a ^ b).toString(), "0110");
}

TEST(BitVector, Equality)
{
    const auto a = BitVector::fromString("111");
    const auto b = BitVector::fromString("111");
    const auto c = BitVector::fromString("110");
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == c);
}

TEST(BitVector, TailMasking)
{
    // A 65-bit vector filled with ones must report exactly 65.
    BitVector v(65, true);
    EXPECT_EQ(v.popcount(), 65u);
    v.fill(false);
    v.fill(true);
    EXPECT_EQ(v.popcount(), 65u);
}

TEST(BitVector, HammingWeightEmpty)
{
    BitVector v;
    EXPECT_DOUBLE_EQ(v.hammingWeight(), 0.0);
}
