/**
 * @file
 * Unit tests for DramChip: construction, routing, environment, time.
 */

#include <gtest/gtest.h>

#include "sim/chip.hh"

using namespace fracdram;
using namespace fracdram::sim;

namespace
{

DramParams
tinyParams()
{
    DramParams p;
    p.numBanks = 4;
    p.subarraysPerBank = 2;
    p.rowsPerSubarray = 16;
    p.colsPerRow = 64;
    return p;
}

} // namespace

TEST(DramChip, GeometryAccessors)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    EXPECT_EQ(chip.dramParams().numBanks, 4u);
    EXPECT_EQ(chip.dramParams().rowsPerBank(), 32u);
    EXPECT_EQ(chip.dramParams().totalCells(), 4u * 32u * 64u);
    EXPECT_EQ(chip.group(), DramGroup::B);
    EXPECT_EQ(chip.serial(), 1u);
    EXPECT_EQ(chip.profile().vendor, "SK Hynix");
}

TEST(DramChip, TimeAdvances)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    EXPECT_DOUBLE_EQ(chip.now(), 0.0);
    chip.advanceTime(2.5);
    EXPECT_DOUBLE_EQ(chip.now(), 2.5);
    EXPECT_DEATH(chip.advanceTime(-1.0), "backwards");
}

TEST(DramChip, EnvironmentDefaults)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    EXPECT_DOUBLE_EQ(chip.env().vdd, 1.5);
    EXPECT_DOUBLE_EQ(chip.env().temperatureC, 20.0);
    EXPECT_DOUBLE_EQ(chip.env().leakageScale(), 1.0);
}

TEST(Environment, LeakageDoublesPerTenDegrees)
{
    Environment env;
    env.temperatureC = 30.0;
    EXPECT_NEAR(env.leakageScale(), 2.0, 1e-12);
    env.temperatureC = 40.0;
    EXPECT_NEAR(env.leakageScale(), 4.0, 1e-12);
    env.temperatureC = 10.0;
    EXPECT_NEAR(env.leakageScale(), 0.5, 1e-12);
}

TEST(Environment, NoiseScaleMildAndBounded)
{
    Environment env;
    env.temperatureC = 60.0;
    EXPECT_GT(env.noiseScale(), 1.0);
    EXPECT_LT(env.noiseScale(), 3.0);
    env.temperatureC = -60.0;
    EXPECT_GE(env.noiseScale(), 0.25);
}

TEST(DramChip, LowerVddScalesWrites)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    chip.env().vdd = 1.4;
    Cycles t = 10;
    BitVector ones(64, true);
    chip.act(t, 0, 0);
    chip.write(t + 6, 0, ones);
    chip.pre(t + 20, 0);
    chip.flushAll(t + 30);
    EXPECT_NEAR(chip.bank(0).cellVoltage(0, 0), 1.4, 1e-6);
}

TEST(DramChip, BankIndexChecked)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    EXPECT_DEATH(chip.bank(99), "out of range");
}

TEST(DramChip, RowIsAntiFollowsParity)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    EXPECT_FALSE(chip.rowIsAnti(0, 0));
    EXPECT_TRUE(chip.rowIsAnti(0, 1));
    EXPECT_FALSE(chip.rowIsAnti(1, 2));
}

TEST(DramChip, DiscardAllRows)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    chip.bank(0).cellVoltage(3, 0); // allocates
    ASSERT_TRUE(chip.bank(0).rowAllocated(3));
    chip.discardAllRows();
    EXPECT_FALSE(chip.bank(0).rowAllocated(3));
}

TEST(DramChip, DistinctSerialsDistinctStartup)
{
    DramChip a(DramGroup::B, 1, tinyParams());
    DramChip b(DramGroup::B, 2, tinyParams());
    int same = 0;
    for (ColAddr c = 0; c < 64; ++c) {
        same += (a.bank(0).cellVoltage(0, c) > 0.75) ==
                (b.bank(0).cellVoltage(0, c) > 0.75);
    }
    EXPECT_LT(same, 56);
    EXPECT_GT(same, 8);
}
