/**
 * @file
 * End-to-end tests of the `fracdram` CLI: each subcommand must run,
 * exit cleanly, and print the expected landmarks. The binary path is
 * injected by CMake (FRACDRAM_CLI_PATH).
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace
{

/** Run a CLI invocation; returns {exit_code, stdout}. */
std::pair<int, std::string>
runCli(const std::string &args)
{
    const std::string cmd =
        std::string(FRACDRAM_CLI_PATH) + " " + args + " 2>/dev/null";
    std::FILE *pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string out;
    std::array<char, 512> buf;
    while (std::fgets(buf.data(), buf.size(), pipe))
        out += buf.data();
    const int status = pclose(pipe);
    return {WEXITSTATUS(status), out};
}

} // namespace

TEST(Cli, InfoListsAllGroups)
{
    const auto [code, out] = runCli("info");
    EXPECT_EQ(code, 0);
    for (const char *vendor : {"SK Hynix", "Samsung", "TimeTec",
                               "Corsair", "Micron", "Elpida", "Nanya"})
        EXPECT_NE(out.find(vendor), std::string::npos) << vendor;
    EXPECT_NE(out.find("DDR4"), std::string::npos);
}

TEST(Cli, CapabilityProbesGroup)
{
    const auto [code, out] = runCli("capability --group J");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("Frac                 no"), std::string::npos);
}

TEST(Cli, FracShowsVoltageWalk)
{
    const auto [code, out] = runCli("frac --group B --fracs 2");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("1.500 V"), std::string::npos);
    EXPECT_NE(out.find("readout weight"), std::string::npos);
}

TEST(Cli, MajReportsCoverage)
{
    const auto [code, out] = runCli("maj --group B");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("three-row MAJ3"), std::string::npos);
    EXPECT_NE(out.find("{1,1,0}"), std::string::npos);
}

TEST(Cli, MajRejectsNonMajorityGroup)
{
    const auto [code, out] = runCli("maj --group E");
    EXPECT_EQ(code, 1);
    EXPECT_NE(out.find("no in-memory majority"), std::string::npos);
}

TEST(Cli, PufPrintsStats)
{
    const auto [code, out] = runCli("puf --group E --challenges 2");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("intra-HD"), std::string::npos);
    EXPECT_NE(out.find("inter-HD"), std::string::npos);
}

TEST(Cli, TrngEmitsHex)
{
    const auto [code, out] = runCli("trng --bits 64");
    EXPECT_EQ(code, 0);
    // 64 bits = 16 hex chars plus the newline.
    std::string hex = out;
    while (!hex.empty() && (hex.back() == '\n' || hex.back() == '\r'))
        hex.pop_back();
    EXPECT_EQ(hex.size(), 16u);
    for (const char c : hex)
        EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c))) << c;
}

TEST(Cli, DecoderReportsModel)
{
    const auto [code, out] = runCli("decoder --group B");
    EXPECT_EQ(code, 0);
    EXPECT_NE(out.find("three-row sets      yes"), std::string::npos);
}

TEST(Cli, UnknownCommandUsage)
{
    const auto [code, out] = runCli("bogus");
    EXPECT_EQ(code, 2);
    EXPECT_NE(out.find("usage"), std::string::npos);
}
