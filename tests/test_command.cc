/**
 * @file
 * Unit tests for command encoding and the sequence builder.
 */

#include <gtest/gtest.h>

#include "softmc/command.hh"

using namespace fracdram;
using namespace fracdram::softmc;

TEST(CommandSequence, CursorAdvancesPerCommand)
{
    CommandSequence seq;
    seq.act(0, 5).pre(0).act(0, 6);
    ASSERT_EQ(seq.size(), 3u);
    EXPECT_EQ(seq.commands()[0].cycle, 0u);
    EXPECT_EQ(seq.commands()[1].cycle, 1u);
    EXPECT_EQ(seq.commands()[2].cycle, 2u);
    EXPECT_EQ(seq.lengthCycles(), 3u);
}

TEST(CommandSequence, IdleInsertsGaps)
{
    CommandSequence seq;
    seq.act(1, 2).idle(5).pre(1);
    EXPECT_EQ(seq.commands()[1].cycle, 6u);
    EXPECT_EQ(seq.lengthCycles(), 7u);
}

TEST(CommandSequence, OperandsPreserved)
{
    CommandSequence seq;
    seq.act(3, 17);
    const auto &cmd = seq.commands()[0].cmd;
    EXPECT_EQ(cmd.kind, CommandKind::Act);
    EXPECT_EQ(cmd.bank, 3u);
    EXPECT_EQ(cmd.row, 17u);
}

TEST(CommandSequence, WritePayloads)
{
    CommandSequence seq;
    BitVector a = BitVector::fromString("101");
    BitVector b = BitVector::fromString("010");
    seq.write(0, a).write(1, b);
    EXPECT_EQ(seq.payload(seq.commands()[0].cmd.payload).toString(),
              "101");
    EXPECT_EQ(seq.payload(seq.commands()[1].cmd.payload).toString(),
              "010");
}

TEST(CommandSequence, BadPayloadIndexDies)
{
    CommandSequence seq;
    EXPECT_DEATH(seq.payload(0), "payload");
}

TEST(CommandSequence, EmptySequence)
{
    CommandSequence seq;
    EXPECT_TRUE(seq.empty());
    EXPECT_EQ(seq.lengthCycles(), 0u);
}

TEST(CommandSequence, ToStringTrace)
{
    CommandSequence seq;
    seq.act(0, 1).pre(0).refresh();
    const auto s = seq.toString();
    EXPECT_NE(s.find("ACT(b0,r1)"), std::string::npos);
    EXPECT_NE(s.find("PRE(b0)"), std::string::npos);
    EXPECT_NE(s.find("REF"), std::string::npos);
}

TEST(CommandKindNames, AllNamed)
{
    EXPECT_EQ(commandKindName(CommandKind::Act), "ACT");
    EXPECT_EQ(commandKindName(CommandKind::Pre), "PRE");
    EXPECT_EQ(commandKindName(CommandKind::PreAll), "PREA");
    EXPECT_EQ(commandKindName(CommandKind::Read), "RD");
    EXPECT_EQ(commandKindName(CommandKind::Write), "WR");
    EXPECT_EQ(commandKindName(CommandKind::Refresh), "REF");
    EXPECT_EQ(commandKindName(CommandKind::Nop), "NOP");
}
