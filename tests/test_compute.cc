/**
 * @file
 * Tests of the bulk bitwise compute engine and the planar adder.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compute/adder.hh"
#include "compute/engine.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

using namespace fracdram;
using namespace fracdram::sim;
using namespace fracdram::softmc;
using namespace fracdram::compute;

namespace
{

DramParams
engineParams()
{
    DramParams p;
    p.numBanks = 1;
    p.subarraysPerBank = 1;
    p.rowsPerSubarray = 128; // room for home rows
    p.colsPerRow = 256;
    return p;
}

BitVector
randomBits(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    BitVector v(n);
    for (std::size_t i = 0; i < n; ++i)
        v.set(i, rng.chance(0.5));
    return v;
}

/** Fraction of matching lanes between two vectors. */
double
agreement(const BitVector &a, const BitVector &b)
{
    return 1.0 - static_cast<double>(a.hammingDistance(b)) /
                     static_cast<double>(a.size());
}

} // namespace

class ComputeEngineTest : public ::testing::TestWithParam<DramGroup>
{
  protected:
    ComputeEngineTest()
        : chip(GetParam(), 1, engineParams()), mc(chip, false),
          engine(mc)
    {
    }

    DramChip chip;
    MemoryController mc;
    BitwiseEngine engine;
};

TEST_P(ComputeEngineTest, WriteReadRoundTrip)
{
    const auto bits = randomBits(engine.lanes(), 1);
    const Value v = engine.alloc();
    engine.write(v, bits);
    EXPECT_TRUE(engine.read(v) == bits);
}

TEST_P(ComputeEngineTest, NotIsFreeAndExact)
{
    const auto bits = randomBits(engine.lanes(), 2);
    const Value v = engine.alloc();
    engine.write(v, bits);
    const auto inverted = engine.read(engine.opNot(v));
    EXPECT_EQ(inverted.hammingDistance(bits), bits.size());
    EXPECT_EQ(engine.majOpsIssued(), 0u);
}

TEST_P(ComputeEngineTest, AndOrMostlyCorrect)
{
    const auto a_bits = randomBits(engine.lanes(), 3);
    const auto b_bits = randomBits(engine.lanes(), 4);
    const Value a = engine.alloc(), b = engine.alloc();
    engine.write(a, a_bits);
    engine.write(b, b_bits);

    const auto and_result = engine.read(engine.opAnd(a, b));
    const auto or_result = engine.read(engine.opOr(a, b));
    BitVector and_expect(engine.lanes()), or_expect(engine.lanes());
    for (std::size_t i = 0; i < engine.lanes(); ++i) {
        and_expect.set(i, a_bits.get(i) && b_bits.get(i));
        or_expect.set(i, a_bits.get(i) || b_bits.get(i));
    }
    EXPECT_GT(agreement(and_result, and_expect), 0.9);
    EXPECT_GT(agreement(or_result, or_expect), 0.9);
}

TEST_P(ComputeEngineTest, XorMostlyCorrect)
{
    const auto a_bits = randomBits(engine.lanes(), 5);
    const auto b_bits = randomBits(engine.lanes(), 6);
    const Value a = engine.alloc(), b = engine.alloc();
    engine.write(a, a_bits);
    engine.write(b, b_bits);
    const auto result = engine.read(engine.opXor(a, b));
    EXPECT_GT(agreement(result, a_bits ^ b_bits), 0.85);
}

TEST_P(ComputeEngineTest, MajThreeOperands)
{
    const auto a_bits = randomBits(engine.lanes(), 7);
    const auto b_bits = randomBits(engine.lanes(), 8);
    const auto c_bits = randomBits(engine.lanes(), 9);
    const Value a = engine.alloc(), b = engine.alloc(),
                c = engine.alloc();
    engine.write(a, a_bits);
    engine.write(b, b_bits);
    engine.write(c, c_bits);
    const auto result = engine.read(engine.opMaj(a, b, c));
    BitVector expect(engine.lanes());
    for (std::size_t i = 0; i < engine.lanes(); ++i) {
        expect.set(i, static_cast<int>(a_bits.get(i)) + b_bits.get(i) +
                              c_bits.get(i) >=
                          2);
    }
    EXPECT_GT(agreement(result, expect), 0.9);
}

TEST_P(ComputeEngineTest, CopyPreservesBothRails)
{
    const auto bits = randomBits(engine.lanes(), 10);
    const Value v = engine.alloc();
    engine.write(v, bits);
    const Value c = engine.opCopy(v);
    EXPECT_TRUE(engine.read(c) == bits);
    const auto neg = engine.read(engine.opNot(c));
    EXPECT_EQ(neg.hammingDistance(bits), bits.size());
}

TEST_P(ComputeEngineTest, AllocatorRecyclesRows)
{
    const std::size_t before = engine.freeRows();
    const Value v = engine.alloc();
    EXPECT_EQ(engine.freeRows(), before - 2);
    engine.release(v);
    EXPECT_EQ(engine.freeRows(), before);
}

TEST_P(ComputeEngineTest, CyclesAccumulate)
{
    const Value a = engine.alloc(), b = engine.alloc();
    engine.write(a, BitVector(engine.lanes(), true));
    engine.write(b, BitVector(engine.lanes(), false));
    const Cycles before = engine.cyclesUsed();
    engine.opAnd(a, b);
    EXPECT_GT(engine.cyclesUsed(), before);
    EXPECT_EQ(engine.majOpsIssued(), 2u); // both rails
}

INSTANTIATE_TEST_SUITE_P(MajorityCapableGroups, ComputeEngineTest,
                         ::testing::Values(DramGroup::B, DramGroup::C,
                                           DramGroup::M),
                         [](const auto &info) {
                             return groupName(info.param);
                         });

TEST(ComputeEngineValidation, RejectsNonMajorityGroups)
{
    DramChip chip(DramGroup::E, 1, engineParams());
    MemoryController mc(chip, false);
    EXPECT_DEATH(BitwiseEngine{mc}, "majority");
}

TEST(PlanarAdder, StoreLoadRoundTrip)
{
    DramChip chip(DramGroup::B, 1, engineParams());
    MemoryController mc(chip, false);
    BitwiseEngine engine(mc);
    PlanarVector vec(engine, 8);
    std::vector<std::uint64_t> values(engine.lanes());
    Rng rng(11);
    for (auto &v : values)
        v = rng.below(256);
    vec.store(values);
    const auto back = vec.load();
    std::size_t ok = 0;
    for (std::size_t i = 0; i < values.size(); ++i)
        ok += back[i] == values[i];
    EXPECT_EQ(ok, values.size());
}

TEST(PlanarAdder, BulkAdditionMostlyExact)
{
    DramChip chip(DramGroup::B, 1, engineParams());
    MemoryController mc(chip, false);
    BitwiseEngine engine(mc);

    PlanarVector a(engine, 6), b(engine, 6);
    std::vector<std::uint64_t> av(engine.lanes()), bv(engine.lanes());
    Rng rng(13);
    for (std::size_t i = 0; i < av.size(); ++i) {
        av[i] = rng.below(64);
        bv[i] = rng.below(64);
    }
    a.store(av);
    b.store(bv);

    auto sum = addVectors(engine, a, b);
    EXPECT_EQ(sum.width(), 7u);
    const auto result = sum.load();
    std::size_t exact = 0;
    for (std::size_t i = 0; i < av.size(); ++i)
        exact += result[i] == av[i] + bv[i];
    // Every lane runs ~16 in-DRAM ops; per-op errors compound, so
    // demand a solid majority of exact lanes rather than perfection.
    EXPECT_GT(static_cast<double>(exact) /
                  static_cast<double>(av.size()),
              0.5);
}

TEST(PlanarAdder, WidthMismatchDies)
{
    DramChip chip(DramGroup::B, 1, engineParams());
    MemoryController mc(chip, false);
    BitwiseEngine engine(mc);
    PlanarVector a(engine, 4), b(engine, 5);
    EXPECT_DEATH(addVectors(engine, a, b), "widths");
}

TEST(PlanarShift, ShiftLeftMultipliesByPowerOfTwo)
{
    DramChip chip(DramGroup::B, 5, engineParams());
    MemoryController mc(chip, false);
    BitwiseEngine engine(mc);
    PlanarVector v(engine, 4);
    std::vector<std::uint64_t> values(engine.lanes());
    for (std::size_t i = 0; i < values.size(); ++i)
        values[i] = i % 16;
    v.store(values);
    auto shifted = shiftLeft(engine, v, 3);
    EXPECT_EQ(shifted.width(), 7u);
    const auto back = shifted.load();
    std::size_t ok = 0;
    for (std::size_t i = 0; i < values.size(); ++i)
        ok += back[i] == values[i] * 8;
    EXPECT_EQ(ok, values.size()); // shifts involve no analog majority
}

TEST(PlanarMul, MulByConstantMostlyExact)
{
    DramChip chip(DramGroup::B, 6, engineParams());
    MemoryController mc(chip, false);
    BitwiseEngine engine(mc);
    PlanarVector v(engine, 4);
    std::vector<std::uint64_t> values(engine.lanes());
    Rng rng(21);
    for (auto &x : values)
        x = rng.below(16);
    v.store(values);
    auto result = mulConstant(engine, v, 5); // 5 = 101b: one addition
    const auto back = result.load();
    std::size_t exact = 0;
    for (std::size_t i = 0; i < values.size(); ++i)
        exact += back[i] == values[i] * 5;
    EXPECT_GT(static_cast<double>(exact) /
                  static_cast<double>(values.size()),
              0.6);
}

TEST(PlanarMul, MulByPowerOfTwoIsExact)
{
    DramChip chip(DramGroup::B, 7, engineParams());
    MemoryController mc(chip, false);
    BitwiseEngine engine(mc);
    PlanarVector v(engine, 4);
    std::vector<std::uint64_t> values(engine.lanes(), 9);
    v.store(values);
    auto result = mulConstant(engine, v, 4);
    const auto back = result.load();
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(back[i], 36u) << i;
}

TEST(PlanarMul, MulByZeroDies)
{
    DramChip chip(DramGroup::B, 8, engineParams());
    MemoryController mc(chip, false);
    BitwiseEngine engine(mc);
    PlanarVector v(engine, 2);
    EXPECT_DEATH(mulConstant(engine, v, 0), "zero");
}
