/**
 * @file
 * Unit tests for the SoftMC-style memory controller: host helpers,
 * voltage-domain conversion, cycle accounting, spec enforcement.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/frac_op.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

using namespace fracdram;
using namespace fracdram::sim;
using namespace fracdram::softmc;

namespace
{

DramParams
tinyParams()
{
    DramParams p;
    p.numBanks = 2;
    p.subarraysPerBank = 1;
    p.rowsPerSubarray = 16;
    p.colsPerRow = 128;
    return p;
}

BitVector
randomBits(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    BitVector v(n);
    for (std::size_t i = 0; i < n; ++i)
        v.set(i, rng.chance(0.5));
    return v;
}

} // namespace

class ControllerTest : public ::testing::Test
{
  protected:
    DramChip chip{DramGroup::B, 1, tinyParams()};
    MemoryController mc{chip, false};
};

TEST_F(ControllerTest, WriteReadRoundTrip)
{
    const auto data = randomBits(128, 1);
    mc.writeRow(0, 4, data);
    EXPECT_TRUE(mc.readRow(0, 4) == data);
}

TEST_F(ControllerTest, WriteReadRoundTripAntiRow)
{
    const auto data = randomBits(128, 2);
    mc.writeRow(0, 5, data); // odd row: anti cells
    EXPECT_TRUE(mc.readRow(0, 5) == data);
}

TEST_F(ControllerTest, VoltageDomainHelpers)
{
    mc.fillRowVoltage(0, 5, true); // anti row, physically high
    EXPECT_DOUBLE_EQ(chip.bank(0).cellVoltage(5, 0), 1.5);
    const auto v = mc.readRowVoltage(0, 5);
    EXPECT_DOUBLE_EQ(v.hammingWeight(), 1.0);
    // Logic view is complemented on an anti row.
    EXPECT_DOUBLE_EQ(mc.readRow(0, 5).hammingWeight(), 0.0);
}

TEST_F(ControllerTest, ToVoltageDomainIdentityOnTrueRows)
{
    const auto data = randomBits(128, 3);
    EXPECT_TRUE(mc.toVoltageDomain(0, 4, data) == data);
    EXPECT_FALSE(mc.toVoltageDomain(0, 5, data) == data);
}

TEST_F(ControllerTest, AccountantChargesLabels)
{
    mc.writeRow(0, 1, randomBits(128, 4));
    mc.readRow(0, 1);
    mc.readRow(0, 1);
    EXPECT_EQ(mc.accountant().countOf("writeRow"), 1u);
    EXPECT_EQ(mc.accountant().countOf("readRow"), 2u);
    EXPECT_GT(mc.accountant().of("readRow"), 0u);
    EXPECT_GT(mc.accountant().total(),
              mc.accountant().of("readRow"));
}

TEST_F(ControllerTest, ClockAdvancesMonotonically)
{
    const auto t0 = mc.nowCycles();
    mc.readRow(0, 1);
    const auto t1 = mc.nowCycles();
    EXPECT_GT(t1, t0);
    mc.readRow(0, 1);
    EXPECT_GT(mc.nowCycles(), t1);
}

TEST_F(ControllerTest, SimulatedTimeFollowsCycles)
{
    const Seconds before = chip.now();
    mc.readRow(0, 1);
    const Seconds after = chip.now();
    // 2.5 ns per cycle.
    EXPECT_NEAR(after - before,
                static_cast<double>(mc.nowCycles()) * 2.5e-9, 1e-12);
}

TEST_F(ControllerTest, WaitSecondsAdvancesTime)
{
    mc.waitSeconds(12.5);
    EXPECT_DOUBLE_EQ(chip.now(), 12.5);
}

TEST_F(ControllerTest, RefreshAllPreservesData)
{
    const auto data = randomBits(128, 5);
    mc.writeRow(0, 2, data);
    mc.refreshAll();
    EXPECT_TRUE(mc.readRow(0, 2) == data);
}

TEST_F(ControllerTest, ReadRowCyclesScalesWithWidth)
{
    // 128 cols -> one burst.
    EXPECT_EQ(mc.readRowCycles(), mc.cyclesPerBurst());
    mc.setCyclesPerBurst(2);
    EXPECT_EQ(mc.readRowCycles(), 2u);
}

TEST(ControllerEnforced, HelpersAreJedecCompliant)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, /*enforce_spec=*/true);
    const auto data = randomBits(128, 6);
    mc.writeRow(0, 3, data); // must not fatal
    EXPECT_TRUE(mc.readRow(0, 3) == data);
    mc.refreshAll();
}

TEST(ControllerEnforced, FracRefusedUnderEnforcement)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, /*enforce_spec=*/true);
    EXPECT_DEATH(core::frac(mc, 0, 1, 1), "JEDEC");
}

TEST(ControllerEnforced, RawViolatingSequenceRefused)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, /*enforce_spec=*/true);
    CommandSequence seq;
    seq.act(0, 1).pre(0); // violates tRAS
    EXPECT_DEATH(mc.execute(seq, "bad"), "violates JEDEC");
}

TEST(CycleAccountantUnit, Totals)
{
    CycleAccountant a;
    a.add("x", 7);
    a.add("x", 7);
    a.add("y", 18);
    EXPECT_EQ(a.of("x"), 14u);
    EXPECT_EQ(a.countOf("x"), 2u);
    EXPECT_EQ(a.of("y"), 18u);
    EXPECT_EQ(a.of("z"), 0u);
    EXPECT_EQ(a.total(), 32u);
    a.clear();
    EXPECT_EQ(a.total(), 0u);
}
