/**
 * @file
 * Unit tests for the CSV writer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/csv.hh"

using namespace fracdram;

TEST(Csv, BasicRender)
{
    CsvWriter csv({"a", "b"});
    csv.addRow({"1", "2"});
    csv.addRow({"3", "4"});
    EXPECT_EQ(csv.render(), "a,b\n1,2\n3,4\n");
}

TEST(Csv, EscapingRules)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
    EXPECT_EQ(CsvWriter::escape("with\"quote"), "\"with\"\"quote\"");
    EXPECT_EQ(CsvWriter::escape("multi\nline"), "\"multi\nline\"");
}

TEST(Csv, EscapedCellsInRender)
{
    CsvWriter csv({"name", "value"});
    csv.addRow({"x,y", "he said \"hi\""});
    EXPECT_EQ(csv.render(),
              "name,value\n\"x,y\",\"he said \"\"hi\"\"\"\n");
}

TEST(Csv, RowWidthChecked)
{
    CsvWriter csv({"a", "b"});
    EXPECT_DEATH(csv.addRow({"only"}), "width");
}

TEST(Csv, WriteFileRoundTrip)
{
    CsvWriter csv({"k", "v"});
    csv.addRow({"x", "1"});
    const std::string path = "/tmp/fracdram_csv_test.csv";
    ASSERT_TRUE(csv.writeFile(path));
    std::ifstream in(path);
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "k,v\nx,1\n");
    std::remove(path.c_str());
}

TEST(Csv, WriteFileBadPath)
{
    CsvWriter csv({"a"});
    EXPECT_FALSE(csv.writeFile("/nonexistent-dir/x.csv"));
}
