/**
 * @file
 * Tests of the DDR4 extension groups (M, N).
 */

#include <gtest/gtest.h>

#include "core/fmaj.hh"
#include "core/fracdram.hh"
#include "core/multi_row.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

using namespace fracdram;
using namespace fracdram::sim;
using namespace fracdram::core;

TEST(Ddr4, GroupsAndNames)
{
    EXPECT_EQ(ddr4Groups().size(), 2u);
    EXPECT_EQ(groupName(DramGroup::M), "M");
    EXPECT_EQ(groupName(DramGroup::N), "N");
    EXPECT_TRUE(isDdr4(DramGroup::M));
    EXPECT_TRUE(isDdr4(DramGroup::N));
    EXPECT_FALSE(isDdr4(DramGroup::B));
    // Not part of Table I.
    for (const auto g : allGroups())
        EXPECT_FALSE(isDdr4(g));
}

TEST(Ddr4, GeometryHasSixteenBanks)
{
    const auto p = DramParams::ddr4();
    EXPECT_EQ(p.numBanks, 16u);
    DramChip chip(DramGroup::M, 1, p);
    EXPECT_EQ(chip.dramParams().numBanks, 16u);
    chip.bank(15).cellVoltage(0, 0); // accessible
}

TEST(Ddr4, CapabilitiesMatchQuacFindings)
{
    const auto &m = vendorProfile(DramGroup::M);
    EXPECT_TRUE(m.supportsFrac);
    EXPECT_FALSE(m.supportsThreeRow); // four rows, never three
    EXPECT_TRUE(m.supportsFourRow);
    const auto &n = vendorProfile(DramGroup::N);
    EXPECT_TRUE(n.ignoresOutOfSpecTiming);
}

TEST(Ddr4, FourRowActivationOpensQuadruple)
{
    DramChip chip(DramGroup::M, 1, DramParams::ddr4());
    const auto opened = plannedOpenedRows(chip, 8, 1);
    ASSERT_EQ(opened.size(), 4u);
    const auto adjacent = plannedOpenedRows(chip, 1, 2);
    EXPECT_EQ(adjacent.size(), 4u); // {0,1,2,3}, like groups C/D
}

TEST(Ddr4, FMajWorks)
{
    DramChip chip(DramGroup::M, 1, DramParams::ddr4());
    softmc::MemoryController mc(chip, false);
    const auto cfg = bestFMajConfig(DramGroup::M);
    const std::size_t cols = chip.dramParams().colsPerRow;
    const std::array<BitVector, 3> ops = {BitVector(cols, true),
                                          BitVector(cols, true),
                                          BitVector(cols, false)};
    const auto result = fmaj(mc, 0, cfg, ops);
    EXPECT_GT(result.hammingWeight(), 0.8);
}

TEST(Ddr4, FacadeDispatchesToFMaj)
{
    FracDram dram(DramGroup::M, 1, DramParams::ddr4());
    EXPECT_TRUE(dram.canMajority());
    EXPECT_FALSE(dram.canThreeRowActivate());
    const std::size_t cols = dram.chip().dramParams().colsPerRow;
    const std::array<BitVector, 3> ops = {BitVector(cols, false),
                                          BitVector(cols, true),
                                          BitVector(cols, false)};
    EXPECT_LT(dram.majority(0, ops).hammingWeight(), 0.2);
}

TEST(Ddr4, CheckerGroupInert)
{
    FracDram dram(DramGroup::N, 1, DramParams::ddr4());
    EXPECT_FALSE(dram.canFrac());
    EXPECT_FALSE(dram.canMajority());
}
