/**
 * @file
 * Edge-case tests for the command layer and the bank FSM: paths a
 * well-behaved controller rarely exercises but the model must handle
 * gracefully (reads on closed banks, writes without activation,
 * degenerate geometries, sequence corner cases).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/frac_op.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

using namespace fracdram;
using namespace fracdram::sim;
using namespace fracdram::softmc;

namespace
{

DramParams
tinyParams()
{
    DramParams p;
    p.numBanks = 1;
    p.subarraysPerBank = 1;
    p.rowsPerSubarray = 16;
    p.colsPerRow = 64;
    return p;
}

struct Quiet
{
    Quiet() { setVerbose(false); }
} quiet;

} // namespace

TEST(EdgeCases, ReadOnClosedBankReturnsZeros)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    const BitVector data = chip.read(10, 0);
    EXPECT_EQ(data.size(), 64u);
    EXPECT_EQ(data.popcount(), 0u);
}

TEST(EdgeCases, WriteOnClosedBankIsDropped)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    chip.bank(0).setCellVoltage(3, 0, 1.5);
    chip.write(10, 0, BitVector(64, false));
    // Cell untouched: the write had no open row to land in.
    EXPECT_DOUBLE_EQ(chip.bank(0).cellVoltage(3, 0), 1.5);
}

TEST(EdgeCases, DoublePrechargeHarmless)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    Cycles t = 10;
    chip.pre(t, 0);
    chip.pre(t + 1, 0);
    chip.pre(t + 30, 0);
    EXPECT_TRUE(chip.bank(0).isIdle());
}

TEST(EdgeCases, EmptySequenceExecutes)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    CommandSequence seq;
    const auto result = mc.execute(seq, "empty");
    EXPECT_EQ(result.cycles, 0u);
    EXPECT_TRUE(result.reads.empty());
}

TEST(EdgeCases, NopOnlySequence)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    CommandSequence seq;
    seq.idle(100);
    const auto result = mc.execute(seq, "idle");
    EXPECT_EQ(result.cycles, 100u);
}

TEST(EdgeCases, ActOutOfRangeRowDies)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    EXPECT_DEATH(chip.act(10, 0, 999), "out of range");
}

TEST(EdgeCases, WriteWrongWidthDies)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    Cycles t = 10;
    chip.act(t, 0, 1);
    EXPECT_DEATH(chip.write(t + 6, 0, BitVector(8, true)),
                 "expected");
}

TEST(EdgeCases, MinimalGeometry)
{
    DramParams p;
    p.numBanks = 1;
    p.subarraysPerBank = 1;
    p.rowsPerSubarray = 2;
    p.colsPerRow = 1;
    DramChip chip(DramGroup::B, 1, p);
    MemoryController mc(chip, false);
    mc.writeRow(0, 0, BitVector(1, true));
    EXPECT_TRUE(mc.readRow(0, 0).get(0));
}

TEST(EdgeCases, ZeroGeometryRejected)
{
    DramParams p;
    p.numBanks = 0;
    EXPECT_DEATH(DramChip(DramGroup::B, 1, p), "bank");
    p = DramParams{};
    p.colsPerRow = 0;
    EXPECT_DEATH(DramChip(DramGroup::B, 1, p), "column");
    p = DramParams{};
    p.rowsPerSubarray = 0;
    EXPECT_DEATH(DramChip(DramGroup::B, 1, p), "row");
}

TEST(EdgeCases, RefreshOnOpenBankDies)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    Cycles t = 10;
    chip.act(t, 0, 1);
    chip.flushAll(t + 10);
    EXPECT_DEATH(chip.refresh(t + 20), "precharged");
}

TEST(EdgeCases, FracOnLastRowOfBank)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    const RowAddr last = chip.dramParams().rowsPerBank() - 1;
    mc.fillRowVoltage(0, last, true);
    core::frac(mc, 0, last, 3);
    double sum = 0.0;
    for (ColAddr c = 0; c < 64; ++c)
        sum += chip.bank(0).cellVoltage(last, c);
    EXPECT_LT(sum / 64.0, 1.2);
}

TEST(EdgeCases, InterruptThenLongIdleCommits)
{
    // A Frac whose sequence ends immediately: the flush must commit
    // the interrupted close.
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    mc.fillRowVoltage(0, 4, true);
    CommandSequence seq;
    seq.act(0, 4);
    seq.pre(0); // back-to-back; no trailing idle at all
    mc.execute(seq, "abrupt");
    EXPECT_LT(chip.bank(0).cellVoltage(4, 0), 1.45);
    EXPECT_TRUE(chip.bank(0).isIdle());
}

TEST(EdgeCases, SequencePayloadsOutliveExecution)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    CommandSequence seq;
    {
        BitVector data(64, true);
        seq.act(0, 2);
        seq.idle(5);
        seq.write(0, std::move(data));
        seq.idle(10);
        seq.pre(0);
        seq.idle(5);
    }
    mc.execute(seq, "payload");
    EXPECT_DOUBLE_EQ(mc.readRow(0, 2).hammingWeight(), 1.0);
}

TEST(EdgeCases, VoltageDomainWithAntiCellsDisabled)
{
    // A profile without anti-cell rows: logic and voltage domains
    // coincide everywhere. Verified through group B's even rows
    // (true cells) against an odd (anti) row.
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    const BitVector bits(64, true);
    mc.writeRowVoltage(0, 2, bits);
    mc.writeRowVoltage(0, 3, bits);
    EXPECT_DOUBLE_EQ(mc.readRow(0, 2).hammingWeight(), 1.0);
    EXPECT_DOUBLE_EQ(mc.readRow(0, 3).hammingWeight(), 0.0);
}

TEST(EdgeCases, CellVoltageColumnRangeChecked)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    EXPECT_DEATH(chip.bank(0).cellVoltage(0, 9999), "out of range");
    EXPECT_DEATH(chip.bank(0).setCellVoltage(0, 9999, 1.0),
                 "out of range");
}

TEST(EdgeCases, ManySequencesKeepClockMonotone)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    Cycles prev = mc.nowCycles();
    for (int i = 0; i < 50; ++i) {
        mc.readRow(0, static_cast<RowAddr>(i % 16));
        EXPECT_GT(mc.nowCycles(), prev);
        prev = mc.nowCycles();
    }
}
