/**
 * @file
 * Tests of the Von Neumann extractor.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "puf/extractor.hh"

using namespace fracdram;
using namespace fracdram::puf;

TEST(VonNeumann, KnownVectors)
{
    // Pairs: 10 -> 1, 01 -> 0, 11/00 discarded.
    EXPECT_EQ(VonNeumannExtractor::extract(
                  BitVector::fromString("100111"))
                  .toString(),
              "10");
    EXPECT_EQ(VonNeumannExtractor::extract(
                  BitVector::fromString("0000"))
                  .toString(),
              "");
    EXPECT_EQ(VonNeumannExtractor::extract(
                  BitVector::fromString("01"))
                  .toString(),
              "0");
}

TEST(VonNeumann, OddTailIgnored)
{
    // The trailing unpaired bit must not contribute.
    const auto a =
        VonNeumannExtractor::extract(BitVector::fromString("10011"));
    const auto b =
        VonNeumannExtractor::extract(BitVector::fromString("1001"));
    EXPECT_TRUE(a == b);
}

TEST(VonNeumann, EmptyInput)
{
    EXPECT_TRUE(VonNeumannExtractor::extract(BitVector()).empty());
}

TEST(VonNeumann, UnbiasesBiasedStream)
{
    Rng rng(5);
    BitVector biased(100000);
    for (std::size_t i = 0; i < biased.size(); ++i)
        biased.set(i, rng.chance(0.2)); // heavily biased input
    const auto out = VonNeumannExtractor::extract(biased);
    EXPECT_NEAR(out.hammingWeight(), 0.5, 0.02);
    // Yield ~ p(1-p) per input bit pair -> 0.16 per pair = 0.08/bit...
    // output/input = p(1-p).
    const double yield = static_cast<double>(out.size()) /
                         static_cast<double>(biased.size());
    EXPECT_NEAR(yield, VonNeumannExtractor::expectedYield(0.2), 0.02);
}

TEST(VonNeumann, ExpectedYieldFormula)
{
    EXPECT_DOUBLE_EQ(VonNeumannExtractor::expectedYield(0.5), 0.25);
    EXPECT_DOUBLE_EQ(VonNeumannExtractor::expectedYield(0.0), 0.0);
    EXPECT_NEAR(VonNeumannExtractor::expectedYield(0.21),
                0.21 * 0.79, 1e-12);
}

TEST(VonNeumann, OutputOrderPreservesFirstBitOfPair)
{
    // 10 maps to 1 and 01 maps to 0 (first bit of the pair).
    EXPECT_EQ(VonNeumannExtractor::extract(
                  BitVector::fromString("10"))
                  .toString(),
              "1");
    EXPECT_EQ(VonNeumannExtractor::extract(
                  BitVector::fromString("0110"))
                  .toString(),
              "01");
}
