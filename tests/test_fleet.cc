/**
 * @file
 * Fleet-mode tests (DESIGN.md §5j): device id packing and the
 * capability table, consistent-hash ring placement, the shard's
 * device registry (multiplexing, LRU eviction, bit-identical
 * refault, enrollment persistence, typed CAPABILITY refusals), and
 * an in-process router suite covering placement, steering,
 * enrollment replication, failover and hysteresis re-admission.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "service/client.hh"
#include "service/fleet.hh"
#include "service/proto.hh"
#include "service/router.hh"
#include "service/server.hh"
#include "service/shard.hh"
#include "sim/vendor.hh"

using namespace fracdram;
using namespace std::chrono_literals;

namespace
{

// ---------------------------------------------------------------
// Device ids and the capability table
// ---------------------------------------------------------------

TEST(FleetDeviceId, PacksGroupAndChip)
{
    const std::uint32_t id =
        fleet::makeDeviceId(sim::DramGroup::E, 417);
    EXPECT_EQ(fleet::deviceGroup(id), sim::DramGroup::E);
    EXPECT_EQ(fleet::deviceChip(id), 417u);
}

TEST(FleetDeviceId, LegacySmallIdsLandInGroupA)
{
    // v2 clients send small integers; they must resolve, as group A.
    for (std::uint32_t id : {0u, 1u, 5u, 255u, 65535u})
        EXPECT_EQ(fleet::deviceGroup(id), sim::DramGroup::A);
}

TEST(FleetDeviceId, GroupByteIsTotalModuloWrap)
{
    // Any u32 resolves to a real vendor group - no undefined enum.
    const std::uint32_t weird = 0xFFu << 24 | 3;
    const auto g = static_cast<std::uint32_t>(fleet::deviceGroup(weird));
    EXPECT_LT(g, fleet::kNumGroups);
}

TEST(FleetCapability, MatchesVendorTable)
{
    for (std::uint32_t g = 0; g < fleet::kNumGroups; ++g) {
        const auto group = static_cast<sim::DramGroup>(g);
        const std::uint32_t id = fleet::makeDeviceId(group, 9);
        EXPECT_EQ(fleet::deviceSupportsFrac(id),
                  sim::vendorProfile(group).supportsFrac)
            << "group " << g;
    }
    // The paper's table: J, K, L, N have command-timing checkers.
    EXPECT_FALSE(fleet::deviceSupportsFrac(
        fleet::makeDeviceId(sim::DramGroup::J, 0)));
    EXPECT_FALSE(fleet::deviceSupportsFrac(
        fleet::makeDeviceId(sim::DramGroup::K, 0)));
    EXPECT_TRUE(fleet::deviceSupportsFrac(
        fleet::makeDeviceId(sim::DramGroup::A, 0)));
}

TEST(FleetCapability, QuacNeedsFourRowActivation)
{
    // Entropy capability is narrower than Frac: group A does Frac
    // (PUF substrate) but opens too few rows for QUAC-TRNG.
    for (std::uint32_t g = 0; g < fleet::kNumGroups; ++g) {
        const auto group = static_cast<sim::DramGroup>(g);
        const std::uint32_t id = fleet::makeDeviceId(group, 4);
        EXPECT_EQ(fleet::deviceSupportsQuac(id),
                  sim::vendorProfile(group).supportsFourRow)
            << "group " << g;
    }
    EXPECT_TRUE(fleet::deviceSupportsQuac(
        fleet::makeDeviceId(sim::DramGroup::B, 0)));
    EXPECT_FALSE(fleet::deviceSupportsQuac(
        fleet::makeDeviceId(sim::DramGroup::A, 0)));
}

TEST(FleetCapability, SteeringIsDeterministicAndCapable)
{
    const std::uint32_t bad =
        fleet::makeDeviceId(sim::DramGroup::J, 12345);
    const std::uint32_t steered = fleet::steerToCapable(bad);
    EXPECT_TRUE(fleet::deviceSupportsQuac(steered));
    EXPECT_EQ(fleet::deviceChip(steered), 12345u);
    EXPECT_EQ(fleet::steerToCapable(bad), steered); // stable
    // Frac-but-not-four-row groups steer too: entropy on an A chip
    // must land on a QUAC-capable group.
    const std::uint32_t fracOnly =
        fleet::makeDeviceId(sim::DramGroup::A, 8);
    EXPECT_TRUE(
        fleet::deviceSupportsQuac(fleet::steerToCapable(fracOnly)));
    // Already-capable ids pass through unchanged.
    const std::uint32_t good =
        fleet::makeDeviceId(sim::DramGroup::C, 7);
    EXPECT_EQ(fleet::steerToCapable(good), good);
}

// ---------------------------------------------------------------
// Consistent-hash ring
// ---------------------------------------------------------------

TEST(HashRing, OwnerIsDeterministic)
{
    fleet::HashRing ring(64);
    for (int n = 0; n < 3; ++n)
        ring.addNode(n);
    auto all = [](int) { return true; };
    for (std::uint32_t key = 0; key < 100; ++key)
        EXPECT_EQ(ring.owner(key, all), ring.owner(key, all));
}

TEST(HashRing, VirtualNodesBalanceTheKeySpace)
{
    fleet::HashRing ring(64);
    for (int n = 0; n < 3; ++n)
        ring.addNode(n);
    auto all = [](int) { return true; };
    std::map<int, int> share;
    const int kKeys = 10000;
    for (int k = 0; k < kKeys; ++k)
        ++share[ring.owner(static_cast<std::uint32_t>(k) * 2654435761u,
                           all)];
    for (int n = 0; n < 3; ++n)
        EXPECT_GT(share[n], kKeys / 10)
            << "node " << n << " owns too little";
}

TEST(HashRing, NodeDeathRemapsOnlyItsKeys)
{
    fleet::HashRing ring(64);
    for (int n = 0; n < 4; ++n)
        ring.addNode(n);
    auto all = [](int) { return true; };
    auto no2 = [](int n) { return n != 2; };
    for (std::uint32_t k = 0; k < 5000; ++k) {
        const int before = ring.owner(k, all);
        const int after = ring.owner(k, no2);
        if (before != 2)
            EXPECT_EQ(after, before) << "key " << k << " moved "
                                        "despite a live owner";
        else
            EXPECT_NE(after, 2);
    }
}

TEST(HashRing, OwnersReturnsDistinctReplica)
{
    fleet::HashRing ring(32);
    for (int n = 0; n < 3; ++n)
        ring.addNode(n);
    auto all = [](int) { return true; };
    for (std::uint32_t k = 0; k < 500; ++k) {
        const auto [primary, secondary] = ring.owners(k, all);
        ASSERT_GE(primary, 0);
        ASSERT_GE(secondary, 0);
        EXPECT_NE(primary, secondary);
    }
}

TEST(HashRing, EmptyAndSingleNode)
{
    fleet::HashRing empty(16);
    auto all = [](int) { return true; };
    EXPECT_EQ(empty.owner(7, all), -1);
    fleet::HashRing one(16);
    one.addNode(0);
    EXPECT_EQ(one.owner(7, all), 0);
    EXPECT_EQ(one.owners(7, all).second, -1); // no distinct replica
}

// ---------------------------------------------------------------
// Shard device registry
// ---------------------------------------------------------------

/** Collects responses by token; lets the test await each one. */
class CaptureSink final : public service::ResponseSink
{
  public:
    void onResponse(std::uint64_t token,
                    service::Response &&resp) override
    {
        std::lock_guard<std::mutex> lock(mu_);
        got_[token] = std::move(resp);
        cv_.notify_all();
    }

    service::Response wait(std::uint64_t token)
    {
        std::unique_lock<std::mutex> lock(mu_);
        const bool ok = cv_.wait_for(lock, 10s, [&] {
            return got_.count(token) != 0;
        });
        EXPECT_TRUE(ok) << "no response for token " << token;
        return ok ? got_[token] : service::Response{};
    }

  private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::map<std::uint64_t, service::Response> got_;
};

service::ShardConfig
smallShardConfig()
{
    service::ShardConfig cfg;
    cfg.colsPerRow = 256;
    cfg.numFracs = 4;
    return cfg;
}

/** Submit one request and await the response. */
service::Response
ask(service::Shard &shard, CaptureSink &sink, std::uint64_t token,
    const service::Request &req)
{
    service::Job job;
    job.req = req;
    job.sink = &sink;
    job.token = token;
    EXPECT_TRUE(shard.submit(std::move(job)));
    return sink.wait(token);
}

service::Request
entropyFor(std::uint32_t device, std::uint32_t n)
{
    service::Request req;
    req.type = service::MsgType::GetEntropy;
    req.flags = service::kFlagDeviceId;
    req.device = device;
    req.nBytes = n;
    return req;
}

TEST(FleetShard, MultiplexesDistinctDevices)
{
    service::Shard shard(0, smallShardConfig());
    shard.start();
    CaptureSink sink;
    const std::uint32_t d1 = fleet::makeDeviceId(sim::DramGroup::B, 1);
    const std::uint32_t d2 = fleet::makeDeviceId(sim::DramGroup::C, 1);
    const auto r1 = ask(shard, sink, 1, entropyFor(d1, 32));
    const auto r2 = ask(shard, sink, 2, entropyFor(d2, 32));
    EXPECT_EQ(r1.status, service::Status::Ok);
    EXPECT_EQ(r2.status, service::Status::Ok);
    ASSERT_EQ(r1.data.size(), 32u);
    ASSERT_EQ(r2.data.size(), 32u);
    EXPECT_NE(r1.data, r2.data); // different silicon, different seed
    EXPECT_EQ(shard.residentDevices(), 2u);
    EXPECT_EQ(shard.deviceFaults(), 2u);
    shard.drainAndStop();
}

TEST(FleetShard, UnflaggedTrafficUsesTheDefaultDevice)
{
    service::Shard shard(0, smallShardConfig());
    shard.start();
    CaptureSink sink;
    service::Request req;
    req.type = service::MsgType::GetEntropy;
    req.nBytes = 16;
    const auto resp = ask(shard, sink, 1, req);
    EXPECT_EQ(resp.status, service::Status::Ok);
    EXPECT_EQ(shard.residentDevices(), 0u); // registry untouched
    shard.drainAndStop();
}

TEST(FleetShard, EvictsLeastRecentlyUsedUnderPressure)
{
    service::ShardConfig cfg = smallShardConfig();
    cfg.maxResidentDevices = 2;
    service::Shard shard(0, cfg);
    shard.start();
    CaptureSink sink;
    std::uint64_t token = 0;
    for (std::uint32_t c = 0; c < 5; ++c) {
        const auto resp = ask(
            shard, sink, ++token,
            entropyFor(fleet::makeDeviceId(sim::DramGroup::B, c), 8));
        EXPECT_EQ(resp.status, service::Status::Ok);
    }
    EXPECT_LE(shard.residentDevices(), 2u);
    EXPECT_EQ(shard.deviceFaults(), 5u);
    EXPECT_GE(shard.deviceEvictions(), 3u);
    shard.drainAndStop();
}

TEST(FleetShard, RefaultedDeviceIsBitIdentical)
{
    // Golden-digest property: a PUF reference enrolled on a device,
    // the device evicted, then refaulted, must verify with hamming
    // distance exactly 0 - the rebuilt silicon replays the same
    // trial-noise stream, so the first post-refault evaluation equals
    // the enrollment evaluation bit for bit.
    service::ShardConfig cfg = smallShardConfig();
    cfg.maxResidentDevices = 2;
    service::Shard shard(0, cfg);
    shard.start();
    CaptureSink sink;
    const std::uint32_t dev = fleet::makeDeviceId(sim::DramGroup::A, 7);

    service::Request enroll;
    enroll.type = service::MsgType::PufEnroll;
    enroll.device = dev;
    enroll.bank = 0;
    enroll.row = 1;
    const auto ref = ask(shard, sink, 1, enroll);
    ASSERT_EQ(ref.status, service::Status::Ok);
    ASSERT_GT(ref.bits.size(), 0u);

    // Evict it by touching more devices than the residency cap.
    std::uint64_t token = 1;
    for (std::uint32_t c = 100; c < 103; ++c)
        ask(shard, sink, ++token,
            entropyFor(fleet::makeDeviceId(sim::DramGroup::B, c), 8));
    EXPECT_GE(shard.deviceEvictions(), 1u);

    service::Request verify;
    verify.type = service::MsgType::PufResponse;
    verify.device = dev;
    verify.bank = 0;
    verify.row = 1;
    const auto resp = ask(shard, sink, ++token, verify);
    ASSERT_EQ(resp.status, service::Status::Ok);
    EXPECT_EQ(resp.hamming, 0u) << "refaulted device diverged";
    EXPECT_EQ(resp.bits.size(), ref.bits.size());
    shard.drainAndStop();
}

TEST(FleetShard, DrbgStreamContinuesAcrossEviction)
{
    // The conditioned stream of a device must not depend on whether
    // the device stayed resident: the DRBG state is part of the
    // persistent half. Compare an evict-in-the-middle shard against
    // an undisturbed one.
    const std::uint32_t dev = fleet::makeDeviceId(sim::DramGroup::C, 3);

    service::ShardConfig small = smallShardConfig();
    small.maxResidentDevices = 1;
    service::Shard pressured(0, small);
    pressured.start();
    CaptureSink sink1;
    const auto a1 = ask(pressured, sink1, 1, entropyFor(dev, 32));
    for (std::uint32_t c = 50; c < 52; ++c)
        ask(pressured, sink1, c,
            entropyFor(fleet::makeDeviceId(sim::DramGroup::B, c), 8));
    EXPECT_GE(pressured.deviceEvictions(), 1u);
    const auto a2 = ask(pressured, sink1, 99, entropyFor(dev, 32));
    pressured.drainAndStop();

    service::Shard calm(0, smallShardConfig());
    calm.start();
    CaptureSink sink2;
    const auto b1 = ask(calm, sink2, 1, entropyFor(dev, 32));
    const auto b2 = ask(calm, sink2, 2, entropyFor(dev, 32));
    calm.drainAndStop();

    ASSERT_EQ(a1.status, service::Status::Ok);
    ASSERT_EQ(a2.status, service::Status::Ok);
    EXPECT_EQ(a1.data, b1.data);
    EXPECT_EQ(a2.data, b2.data);
}

TEST(FleetShard, IncapableGroupsGetTypedCapabilityStatus)
{
    service::Shard shard(0, smallShardConfig());
    shard.start();
    CaptureSink sink;
    const std::uint32_t bad = fleet::makeDeviceId(sim::DramGroup::J, 0);
    const auto e = ask(shard, sink, 1, entropyFor(bad, 16));
    EXPECT_EQ(e.status, service::Status::Capability);

    // Group A does Frac but not the four-row activation, so entropy
    // on it is a capability refusal as well (a daemon without a
    // router in front does not steer).
    const auto ea = ask(
        shard, sink, 3,
        entropyFor(fleet::makeDeviceId(sim::DramGroup::A, 1), 16));
    EXPECT_EQ(ea.status, service::Status::Capability);

    service::Request enroll;
    enroll.type = service::MsgType::PufEnroll;
    enroll.device = fleet::makeDeviceId(sim::DramGroup::K, 2);
    enroll.bank = 0;
    enroll.row = 1;
    const auto p = ask(shard, sink, 2, enroll);
    EXPECT_EQ(p.status, service::Status::Capability);
    // The incapable device must never have been materialized
    // (FracPuf would refuse - and fatal - on such a chip).
    EXPECT_EQ(shard.residentDevices(), 0u);
    shard.drainAndStop();
}

// ---------------------------------------------------------------
// Router end to end
// ---------------------------------------------------------------

service::ServerConfig
daemonConfig()
{
    service::ServerConfig cfg;
    cfg.port = 0;
    cfg.metricsPort = 0;
    cfg.numShards = 1;
    cfg.numReactors = 1;
    cfg.pinThreads = false;
    cfg.shard.colsPerRow = 256;
    cfg.shard.numFracs = 4;
    return cfg;
}

bool
waitFor(const std::function<bool()> &pred, std::chrono::seconds limit)
{
    const auto deadline = std::chrono::steady_clock::now() + limit;
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred())
            return true;
        std::this_thread::sleep_for(20ms);
    }
    return pred();
}

TEST(FleetRouter, PlacementSteeringReplicationAndFailover)
{
    std::string err;
    auto s0 = std::make_unique<service::Server>(daemonConfig());
    ASSERT_TRUE(s0->start(&err)) << err;
    auto s1 = std::make_unique<service::Server>(daemonConfig());
    ASSERT_TRUE(s1->start(&err)) << err;
    const std::uint16_t p0 = s0->port(), m0 = s0->metricsPort();

    fleet::RouterConfig rc;
    rc.port = 0;
    rc.metricsPort = 0;
    rc.backends.push_back({"127.0.0.1", p0, m0});
    rc.backends.push_back({"127.0.0.1", s1->port(),
                           s1->metricsPort()});
    rc.vnodes = 32;
    rc.probeIntervalMs = 50;
    rc.ejectAfter = 2;
    rc.readmitAfter = 2;
    rc.upstreamTimeoutMs = 3000;
    fleet::Router router(rc);
    ASSERT_TRUE(router.start(&err)) << err;
    ASSERT_TRUE(waitFor(
        [&] { return router.backendUp(0) && router.backendUp(1); },
        5s));

    service::Client client;
    ASSERT_TRUE(client.connect("127.0.0.1", router.port(), &err))
        << err;

    // HEALTH through the router answers inline with fleet JSON.
    std::string health;
    ASSERT_TRUE(client.health(health, &err)) << err;
    EXPECT_NE(health.find("\"router\""), std::string::npos);

    // Device-addressed entropy routes and round-trips.
    std::vector<std::uint8_t> data;
    service::Status status{};
    ASSERT_TRUE(client.getDeviceEntropy(
        fleet::makeDeviceId(sim::DramGroup::B, 1), 32, false, data,
        status, &err))
        << err;
    EXPECT_EQ(status, service::Status::Ok);
    EXPECT_EQ(data.size(), 32u);

    // Incapable-group entropy is steered, not refused or timed out.
    ASSERT_TRUE(client.getDeviceEntropy(
        fleet::makeDeviceId(sim::DramGroup::J, 1), 32, false, data,
        status, &err))
        << err;
    EXPECT_EQ(status, service::Status::Ok);

    // Incapable-group PUF gets the typed refusal inline.
    BitVector bits;
    ASSERT_TRUE(client.pufEnroll(
        fleet::makeDeviceId(sim::DramGroup::L, 1), 0, 1, bits, status,
        &err));
    EXPECT_EQ(status, service::Status::Capability);

    // Enroll a handful of keys; with two backends, replication puts
    // every key on both.
    const int kKeys = 6;
    std::vector<std::uint32_t> devices;
    for (int k = 0; k < kKeys; ++k) {
        const std::uint32_t dev = fleet::makeDeviceId(
            static_cast<sim::DramGroup>(k % 9),
            static_cast<std::uint32_t>(k));
        devices.push_back(dev);
        ASSERT_TRUE(client.pufEnroll(dev, 0, 1, bits, status, &err))
            << err;
        ASSERT_EQ(status, service::Status::Ok) << "key " << k;
    }

    // Kill backend 0 outright. The prober must eject it, and every
    // key must still verify through its replica.
    s0->stop();
    s0.reset();
    ASSERT_TRUE(waitFor([&] { return !router.backendUp(0); }, 10s));
    EXPECT_GE(router.ejections(), 1u);

    service::Client after;
    ASSERT_TRUE(after.connect("127.0.0.1", router.port(), &err))
        << err;
    for (std::uint32_t dev : devices) {
        std::uint32_t hamming = 0;
        ASSERT_TRUE(after.pufResponse(dev, 0, 1, bits, hamming,
                                      status, &err))
            << err;
        EXPECT_EQ(status, service::Status::Ok)
            << "key on device " << dev << " lost in failover";
        EXPECT_NE(hamming, service::kNoHamming);
    }

    // Restart the dead daemon on its old ports: hysteresis must
    // re-admit it after readmitAfter healthy probes.
    service::ServerConfig cfg0 = daemonConfig();
    cfg0.port = p0;
    cfg0.metricsPort = m0;
    auto s0b = std::make_unique<service::Server>(cfg0);
    ASSERT_TRUE(s0b->start(&err)) << err;
    ASSERT_TRUE(waitFor([&] { return router.backendUp(0); }, 10s));
    EXPECT_GE(router.readmissions(), 1u);

    // Fleet topology and the aggregate metrics render.
    const std::string fleet_json = router.fleetJson();
    EXPECT_NE(fleet_json.find("\"role\": \"router\""),
              std::string::npos);
    EXPECT_NE(fleet_json.find("\"state\": \"up\""),
              std::string::npos);
    const std::string prom = router.aggregateMetrics();
    EXPECT_NE(prom.find("fracdram_router_forwarded"),
              std::string::npos);
    EXPECT_NE(prom.find("# fleet aggregate over"),
              std::string::npos);

    router.stop();
    s0b->stop();
    s1->stop();
}

} // namespace
