/**
 * @file
 * Flight recorder tests: a real loopback server with a postmortem
 * directory, a traced request burst, then cooperative and
 * fatal-signal-path dumps validated for shape - reason, build block,
 * the full reactor phase legend, traces, metrics history, and
 * balanced JSON. The fatal path is exercised in-process by calling
 * writeFatalDump() directly (the real handler adds only SIG_DFL +
 * re-raise on top of it).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>

#include "service/client.hh"
#include "service/flightrec.hh"
#include "service/server.hh"
#include "telemetry/metrics.hh"

using namespace fracdram;
using namespace fracdram::service;

namespace
{

/** mkdtemp wrapper; leaks the dir on purpose (tests are transient). */
std::string
makeTempDir()
{
    char tmpl[] = "/tmp/fracdram_flightrec_XXXXXX";
    const char *dir = ::mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return dir ? dir : ".";
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Minimal structural JSON check: braces/brackets balance outside of
 * strings, strings close, and the document ends at depth zero. Not a
 * full parser - the smoke test runs one of those - but enough to
 * catch an unterminated bundle or a broken escape.
 */
bool
jsonBalanced(const std::string &s)
{
    int depth = 0;
    bool in_string = false, escaped = false;
    for (const char c : s) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            ++depth;
        else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !in_string;
}

ServerConfig
forensicConfig(const std::string &dir)
{
    ServerConfig cfg;
    cfg.port = 0;
    cfg.numShards = 2;
    cfg.shard.colsPerRow = 256;
    cfg.shard.queueCapacity = 64;
    cfg.postmortemDir = dir;
    cfg.historyResMs = 20; // fast ticks so history fills in-test
    cfg.historyPoints = 64;
    return cfg;
}

} // namespace

TEST(FlightRecorder, CooperativeDumpBundleShape)
{
    telemetry::setEnabled(true);
    const std::string dir = makeTempDir();
    Server server(forensicConfig(dir));
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    ASSERT_NE(server.flightRecorder(), nullptr);
    ASSERT_NE(server.history(), nullptr);

    // Traced traffic (request-id-tagged frames land in the ring),
    // then a few history ticks to fill the window.
    Client c;
    ASSERT_TRUE(c.connect("127.0.0.1", server.port(), &err)) << err;
    for (int i = 0; i < 8; ++i) {
        Request req;
        req.type = MsgType::GetEntropy;
        req.flags = kFlagRequestId;
        req.requestId = 0x1000 + i;
        req.seq = static_cast<std::uint16_t>(i);
        req.nBytes = 64;
        ASSERT_TRUE(c.send(req, &err)) << err;
        Response resp;
        ASSERT_TRUE(c.recv(resp, &err, 10000)) << err;
        ASSERT_EQ(resp.status, Status::Ok);
    }
    // The reactor pushes timelines after the responses hit the wire.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (server.traceRing().size() == 0 &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::yield();
    ASSERT_GT(server.traceRing().size(), 0u);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));

    FlightRecorder *rec = server.flightRecorder();
    const std::string path = rec->dump("unit_test", "shape check");
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(rec->lastDumpPath(), path);
    EXPECT_EQ(rec->dumps(), 1u);

    const std::string body = slurp(path);
    ASSERT_FALSE(body.empty());
    EXPECT_TRUE(jsonBalanced(body)) << path;
    EXPECT_NE(body.find("\"reason\":\"unit_test\""),
              std::string::npos);
    EXPECT_NE(body.find("\"detail\":\"shape check\""),
              std::string::npos);
    EXPECT_NE(body.find("\"build\":{\"isa\":\""), std::string::npos);
    // The complete phase legend makes the bundle self-describing.
    EXPECT_NE(body.find("\"phase_names\":[\"idle\",\"accept\","
                        "\"read\",\"shard-dispatch\",\"writev\","
                        "\"control\",\"tick\"]"),
              std::string::npos);
    EXPECT_NE(body.find("\"reactors\":[{\"index\":0,\"phase\":\""),
              std::string::npos);
    EXPECT_NE(body.find("\"queue_depths\":["), std::string::npos);
    // postmortemDir arms the watchdog even without an SLO.
    EXPECT_NE(body.find("\"watchdog\":{\"healthy\":true"),
              std::string::npos);
    // The traced burst must be in the bundle...
    EXPECT_NE(body.find("\"traces\":["), std::string::npos) << path;
    EXPECT_NE(body.find("\"queue_wait_ns\""), std::string::npos)
        << "expected at least one request timeline";
    // ...and so must the metrics-history window with reactor series.
    EXPECT_NE(body.find("\"history\":{\"resolution_ms\":20"),
              std::string::npos);
    EXPECT_NE(body.find("\"service.reactor0.heartbeat\""),
              std::string::npos);
    EXPECT_NE(body.find("\"metrics\":{"), std::string::npos);

    server.stop();
}

TEST(FlightRecorder, FatalBufferWritePath)
{
    telemetry::setEnabled(true);
    const std::string dir = makeTempDir();
    Server server(forensicConfig(dir));
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    FlightRecorder *rec = server.flightRecorder();
    ASSERT_NE(rec, nullptr);

    // Before any refresh the handler has nothing to write: the dump
    // call is a no-op, not a crash or a partial file.
    ::remove((dir + "/postmortem-fatal.json").c_str());
    rec->writeFatalDump(6);
    EXPECT_TRUE(slurp(dir + "/postmortem-fatal.json").empty());

    // One refresh publishes a complete pre-serialized bundle; the
    // signal-handler path then only appends the signal number.
    rec->refreshFatalBuffer();
    rec->writeFatalDump(11);
    const std::string body = slurp(dir + "/postmortem-fatal.json");
    ASSERT_FALSE(body.empty());
    EXPECT_TRUE(jsonBalanced(body));
    EXPECT_NE(body.find("\"reason\":\"fatal_signal\""),
              std::string::npos);
    EXPECT_NE(body.find("\"signal\":11}"), std::string::npos);

    // A second refresh+write must overwrite, not append.
    rec->refreshFatalBuffer();
    rec->writeFatalDump(7);
    const std::string again = slurp(dir + "/postmortem-fatal.json");
    EXPECT_TRUE(jsonBalanced(again));
    EXPECT_NE(again.find("\"signal\":7}"), std::string::npos);
    EXPECT_EQ(again.find("\"signal\":11}"), std::string::npos);

    server.stop();
}

TEST(FlightRecorder, OffByDefault)
{
    telemetry::setEnabled(true);
    ServerConfig cfg;
    cfg.port = 0;
    cfg.numShards = 1;
    cfg.shard.colsPerRow = 256;
    Server server(cfg);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    // No postmortem dir and no metrics port: no recorder, and the
    // history ring does not run with nothing to consume it.
    EXPECT_EQ(server.flightRecorder(), nullptr);
    EXPECT_EQ(server.history(), nullptr);
    server.stop();
}
