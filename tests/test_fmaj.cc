/**
 * @file
 * Tests of F-MAJ: majority-of-three on a four-row activation.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/fmaj.hh"
#include "core/maj3.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

using namespace fracdram;
using namespace fracdram::sim;
using namespace fracdram::softmc;
using namespace fracdram::core;

namespace
{

DramParams
tinyParams()
{
    DramParams p;
    p.numBanks = 1;
    p.subarraysPerBank = 1;
    p.rowsPerSubarray = 32;
    p.colsPerRow = 512;
    return p;
}

BitVector
randomBits(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    BitVector v(n);
    for (std::size_t i = 0; i < n; ++i)
        v.set(i, rng.chance(0.5));
    return v;
}

} // namespace

TEST(FMajConfigTest, BestConfigsMatchPaper)
{
    const auto b = bestFMajConfig(DramGroup::B);
    EXPECT_EQ(b.actFirst, 8u);
    EXPECT_EQ(b.actSecond, 1u);
    EXPECT_EQ(b.fracRow, 1u); // R2
    EXPECT_TRUE(b.fracInitOnes);

    const auto c = bestFMajConfig(DramGroup::C);
    EXPECT_EQ(c.fracRow, c.actFirst); // R1
    EXPECT_TRUE(c.fracInitOnes);

    const auto d = bestFMajConfig(DramGroup::D);
    EXPECT_EQ(d.fracRow, 3u); // R4
    EXPECT_FALSE(d.fracInitOnes);
}

TEST(FMajConfigTest, NonFourRowGroupFatal)
{
    EXPECT_DEATH(bestFMajConfig(DramGroup::A), "four rows");
}

TEST(FMajConfigTest, OperandRowsExcludeFracRow)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    const auto cfg = bestFMajConfig(DramGroup::B);
    const auto rows = fmajOperandRows(chip, cfg);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0], 0u);
    EXPECT_EQ(rows[1], 8u);
    EXPECT_EQ(rows[2], 9u);
}

TEST(FMajConfigTest, BadFracRowFatal)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    auto cfg = bestFMajConfig(DramGroup::B);
    cfg.fracRow = 5; // not among {0,1,8,9}
    EXPECT_DEATH(fmajOperandRows(chip, cfg), "not among");
}

TEST(FMajConfigTest, NonGlitchPairFatal)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    FMajConfig cfg;
    cfg.actFirst = 0;
    cfg.actSecond = 16; // outside the glitch window
    EXPECT_DEATH(fmajOperandRows(chip, cfg), "opens");
}

class FMajGroupTest : public ::testing::TestWithParam<DramGroup>
{
};

TEST_P(FMajGroupTest, AllSixCombosMostlyCorrect)
{
    DramChip chip(GetParam(), 1, tinyParams());
    MemoryController mc(chip, false);
    const auto cfg = bestFMajConfig(GetParam());
    const std::size_t cols = 512;

    const bool combos[6][3] = {
        {1, 0, 0}, {0, 1, 0}, {0, 0, 1},
        {0, 1, 1}, {1, 0, 1}, {1, 1, 0},
    };
    for (const auto &combo : combos) {
        const std::array<BitVector, 3> ops = {
            BitVector(cols, combo[0]),
            BitVector(cols, combo[1]),
            BitVector(cols, combo[2]),
        };
        const bool expected =
            static_cast<int>(combo[0]) + combo[1] + combo[2] >= 2;
        const auto result = fmaj(mc, 0, cfg, ops);
        const double hw = result.hammingWeight();
        if (expected)
            EXPECT_GT(hw, 0.8) << combo[0] << combo[1] << combo[2];
        else
            EXPECT_LT(hw, 0.2) << combo[0] << combo[1] << combo[2];
    }
}

TEST_P(FMajGroupTest, RandomOperandsTrackSoftwareMajority)
{
    DramChip chip(GetParam(), 2, tinyParams());
    MemoryController mc(chip, false);
    const auto cfg = bestFMajConfig(GetParam());
    const auto a = randomBits(512, 10);
    const auto b = randomBits(512, 20);
    const auto c = randomBits(512, 30);
    const auto result = fmaj(mc, 0, cfg, {a, b, c});
    const auto expected = softwareMaj3(a, b, c);
    const double err =
        static_cast<double>(result.hammingDistance(expected)) / 512.0;
    EXPECT_LT(err, 0.2) << groupName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(FourRowGroups, FMajGroupTest,
                         ::testing::Values(DramGroup::B, DramGroup::C,
                                           DramGroup::D),
                         [](const auto &info) {
                             return groupName(info.param);
                         });

TEST(FMajTest, WithoutFracsActsLikeFourOperandSharing)
{
    // With zero Fracs the "fractional" row is a full rail and biases
    // the operation - exactly the failure the paper diagnoses.
    DramChip chip(DramGroup::C, 3, tinyParams());
    MemoryController mc(chip, false);
    auto cfg = bestFMajConfig(DramGroup::C);
    cfg.numFracs = 0;
    cfg.fracInitOnes = true;
    const std::size_t cols = 512;
    // Majority says 0, but the rail-one frac row flips many columns.
    const std::array<BitVector, 3> ops = {BitVector(cols, true),
                                          BitVector(cols, false),
                                          BitVector(cols, false)};
    const auto result = fmaj(mc, 0, cfg, ops);
    EXPECT_GT(result.hammingWeight(), 0.5);
}

TEST(FMajTest, PreparedFracRowReuseRequiresRePreparation)
{
    // The activation destroys the fractional value: a second F-MAJ
    // without re-preparation must behave like the no-frac case.
    DramChip chip(DramGroup::B, 4, tinyParams());
    MemoryController mc(chip, false);
    const auto cfg = bestFMajConfig(DramGroup::B);
    const std::size_t cols = 512;
    const std::array<BitVector, 3> ops = {BitVector(cols, true),
                                          BitVector(cols, false),
                                          BitVector(cols, false)};

    fmajPrepareFracRow(mc, 0, cfg);
    const auto first = fmajWithPreparedFracRow(mc, 0, cfg, ops);
    EXPECT_LT(first.hammingWeight(), 0.2); // correct majority 0

    // Frac row now holds the restored result, not a fractional value.
    const std::array<BitVector, 3> ops2 = {BitVector(cols, true),
                                           BitVector(cols, true),
                                           BitVector(cols, false)};
    const auto second = fmajWithPreparedFracRow(mc, 0, cfg, ops2);
    // Majority is 1 and the stale frac row (all zeros after the first
    // op) fights it: noticeably worse than a prepared run.
    fmajPrepareFracRow(mc, 0, cfg);
    const auto prepared = fmajWithPreparedFracRow(mc, 0, cfg, ops2);
    EXPECT_GT(prepared.hammingWeight(), second.hammingWeight());
}
