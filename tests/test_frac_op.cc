/**
 * @file
 * Tests of the Frac primitive through the public controller API
 * (paper Sec. III-A behaviour).
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "core/frac_op.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

using namespace fracdram;
using namespace fracdram::sim;
using namespace fracdram::softmc;
using namespace fracdram::core;

namespace
{

DramParams
tinyParams()
{
    DramParams p;
    p.numBanks = 2;
    p.subarraysPerBank = 1;
    p.rowsPerSubarray = 16;
    p.colsPerRow = 256;
    return p;
}

double
meanVoltage(DramChip &chip, BankAddr bank, RowAddr row)
{
    OnlineStats s;
    for (ColAddr c = 0; c < chip.dramParams().colsPerRow; ++c)
        s.add(chip.bank(bank).cellVoltage(row, c));
    return s.mean();
}

} // namespace

TEST(FracOp, SequenceLayout)
{
    const auto seq = buildFracSequence(0, 3, 1);
    // PRE, idle, ACT, PRE back-to-back, 5 idle.
    ASSERT_EQ(seq.size(), 3u);
    EXPECT_EQ(seq.commands()[1].cmd.kind, CommandKind::Act);
    EXPECT_EQ(seq.commands()[2].cmd.kind, CommandKind::Pre);
    EXPECT_EQ(seq.commands()[2].cycle, seq.commands()[1].cycle + 1);
    // Each Frac costs exactly 7 cycles beyond the setup precharge.
    const auto seq2 = buildFracSequence(0, 3, 2);
    EXPECT_EQ(seq2.lengthCycles() - seq.lengthCycles(), fracOpCycles);
}

TEST(FracOp, StoresFractionalVoltage)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    mc.fillRowVoltage(0, 4, true);
    frac(mc, 0, 4, 1);
    const double v = meanVoltage(chip, 0, 4);
    EXPECT_GT(v, 0.75);
    EXPECT_LT(v, 1.45);
}

TEST(FracOp, MoreFracsCloserToHalfVdd)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    double prev_gap = 0.75; // |V - Vdd/2| upper bound at full level
    for (const int n : {1, 2, 3, 5, 10}) {
        mc.fillRowVoltage(0, 4, true);
        frac(mc, 0, 4, n);
        // Fast cells only: slow cells barely move by design.
        OnlineStats gap;
        for (ColAddr c = 0; c < 256; ++c) {
            if (!chip.variation().cellIsSlow(0, 4, c))
                gap.add(chip.bank(0).cellVoltage(4, c) - 0.75);
        }
        EXPECT_LT(gap.mean(), prev_gap) << n;
        EXPECT_GT(gap.mean(), -0.01) << n;
        prev_gap = gap.mean();
    }
    EXPECT_LT(prev_gap, 0.02); // ten Fracs: very close to Vdd/2
}

TEST(FracOp, InitialZerosApproachFromBelow)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    mc.fillRowVoltage(0, 4, false);
    frac(mc, 0, 4, 3);
    const double v = meanVoltage(chip, 0, 4);
    EXPECT_GT(v, 0.02);
    EXPECT_LT(v, 0.75);
}

TEST(FracOp, CheckerGroupUnaffected)
{
    DramChip chip(DramGroup::J, 1, tinyParams());
    MemoryController mc(chip, false);
    mc.fillRowVoltage(0, 4, true);
    frac(mc, 0, 4, 5);
    EXPECT_DOUBLE_EQ(meanVoltage(chip, 0, 4), 1.5);
    // Reads back all ones.
    EXPECT_DOUBLE_EQ(mc.readRowVoltage(0, 4).hammingWeight(), 1.0);
}

TEST(FracOp, ReadDestroysFractionalValue)
{
    // Destructive readout: a normal activation snaps the fractional
    // cells to rails (Sec. IV-B).
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    mc.fillRowVoltage(0, 4, true);
    frac(mc, 0, 4, 5);
    mc.readRow(0, 4);
    for (ColAddr c = 0; c < 32; ++c) {
        const double v = chip.bank(0).cellVoltage(4, c);
        EXPECT_TRUE(v < 0.01 || v > 1.49) << c;
    }
}

TEST(FracOp, CountValidation)
{
    EXPECT_DEATH(buildFracSequence(0, 1, 0), "count");
}
