/**
 * @file
 * Tests of the FracDram facade.
 */

#include <gtest/gtest.h>

#include "core/fracdram.hh"

using namespace fracdram;
using namespace fracdram::sim;
using namespace fracdram::core;

namespace
{

DramParams
tinyParams()
{
    DramParams p;
    p.numBanks = 2;
    p.subarraysPerBank = 1;
    p.rowsPerSubarray = 32;
    p.colsPerRow = 256;
    return p;
}

} // namespace

TEST(FracDramFacade, CapabilitiesFollowProfile)
{
    FracDram b(DramGroup::B, 1, tinyParams());
    EXPECT_TRUE(b.canFrac());
    EXPECT_TRUE(b.canThreeRowActivate());
    EXPECT_TRUE(b.canFourRowActivate());
    EXPECT_TRUE(b.canMajority());

    FracDram c(DramGroup::C, 1, tinyParams());
    EXPECT_TRUE(c.canFrac());
    EXPECT_FALSE(c.canThreeRowActivate());
    EXPECT_TRUE(c.canMajority()); // via F-MAJ

    FracDram e(DramGroup::E, 1, tinyParams());
    EXPECT_FALSE(e.canMajority());

    FracDram j(DramGroup::J, 1, tinyParams());
    EXPECT_FALSE(j.canFrac());
    EXPECT_FALSE(j.canMajority());
}

TEST(FracDramFacade, WriteReadRoundTrip)
{
    FracDram dram(DramGroup::B, 1, tinyParams());
    BitVector data(256);
    for (std::size_t i = 0; i < 256; ++i)
        data.set(i, (i * 7) % 5 < 2);
    dram.writeRow(1, 9, data);
    EXPECT_TRUE(dram.readRow(1, 9) == data);
}

TEST(FracDramFacade, MajorityDispatchesPerCapability)
{
    const std::array<BitVector, 3> ops = {BitVector(256, true),
                                          BitVector(256, true),
                                          BitVector(256, false)};
    // Group B: three-row path.
    FracDram b(DramGroup::B, 1, tinyParams());
    EXPECT_GT(b.majority(0, ops).hammingWeight(), 0.85);
    // Group C: F-MAJ path.
    FracDram c(DramGroup::C, 1, tinyParams());
    EXPECT_GT(c.majority(0, ops).hammingWeight(), 0.75);
}

TEST(FracDramFacade, MajorityUnavailableFatal)
{
    FracDram e(DramGroup::E, 1, tinyParams());
    const std::array<BitVector, 3> ops = {BitVector(256, true),
                                          BitVector(256, true),
                                          BitVector(256, false)};
    EXPECT_DEATH(e.majorityFMaj(0, ops), "F-MAJ");
}

TEST(FracDramFacade, FracOnCheckerGroupFatal)
{
    FracDram j(DramGroup::J, 1, tinyParams());
    EXPECT_DEATH(j.frac(0, 1, 1), "unavailable");
}

TEST(FracDramFacade, FracReadoutIsStablePerDevice)
{
    FracDram dram(DramGroup::B, 7, tinyParams());
    const auto r1 = dram.fracReadout(0, 4, 10);
    const auto r2 = dram.fracReadout(0, 4, 10);
    const double intra =
        static_cast<double>(r1.hammingDistance(r2)) / 256.0;
    EXPECT_LT(intra, 0.1);
}

TEST(FracDramFacade, FracReadoutDiffersAcrossDevices)
{
    FracDram a(DramGroup::B, 1, tinyParams());
    FracDram b(DramGroup::B, 2, tinyParams());
    const auto ra = a.fracReadout(0, 4, 10);
    const auto rb = b.fracReadout(0, 4, 10);
    const double inter =
        static_cast<double>(ra.hammingDistance(rb)) / 256.0;
    EXPECT_GT(inter, 0.25);
}

TEST(FracDramFacade, StoreHalfMasked)
{
    FracDram dram(DramGroup::B, 3, tinyParams());
    BitVector mask(256, false);
    for (std::size_t i = 0; i < 256; i += 4)
        mask.set(i, true);
    dram.storeHalfMasked(0, mask, /*background=*/true);
    // Background columns of row 0 stay readable as high.
    const auto v = dram.controller().readRowVoltage(0, 0);
    std::size_t bg_high = 0, bg_total = 0;
    for (std::size_t i = 0; i < 256; ++i) {
        if (!mask.get(i)) {
            bg_high += v.get(i);
            ++bg_total;
        }
    }
    EXPECT_GT(static_cast<double>(bg_high) /
                  static_cast<double>(bg_total),
              0.9);
}

TEST(FracDramFacade, StoreHalfMaskedNeedsFourRows)
{
    FracDram e(DramGroup::E, 1, tinyParams());
    EXPECT_DEATH(e.storeHalfMasked(0, BitVector(256, true), false),
                 "four-row");
}

TEST(FracDramFacade, RefreshManagerWired)
{
    FracDram dram(DramGroup::B, 1, tinyParams());
    dram.controller().waitSeconds(0.1);
    EXPECT_TRUE(dram.refreshManager().due());
    EXPECT_TRUE(dram.refreshManager().tick());
}
