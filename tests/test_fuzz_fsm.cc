/**
 * @file
 * Fuzz-style robustness tests: random command streams - including
 * timings no sane controller would issue - must never crash the bank
 * state machine, corrupt its invariants, or push any cell outside
 * the physical envelope.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/chip.hh"

using namespace fracdram;
using namespace fracdram::sim;

namespace
{

DramParams
tinyParams()
{
    DramParams p;
    p.numBanks = 2;
    p.subarraysPerBank = 1;
    p.rowsPerSubarray = 32;
    p.colsPerRow = 64;
    return p;
}

void
fuzzOneChip(DramGroup group, std::uint64_t seed, int steps)
{
    DramChip chip(group, seed, tinyParams());
    Rng rng(mixSeed(seed, 0xf022));
    Cycles t = 10;

    for (int step = 0; step < steps; ++step) {
        const BankAddr bank = static_cast<BankAddr>(rng.below(2));
        const RowAddr row = static_cast<RowAddr>(rng.below(32));
        // Adversarial gap distribution: mostly back-to-back, with
        // occasional long idles.
        t += rng.chance(0.7) ? 1 : rng.below(40) + 1;

        switch (rng.below(6)) {
          case 0:
          case 1:
            chip.act(t, bank, row);
            break;
          case 2:
            chip.pre(t, bank);
            break;
          case 3:
            chip.read(t, bank);
            break;
          case 4: {
            BitVector bits(64);
            for (std::size_t i = 0; i < 64; ++i)
                bits.set(i, rng.chance(0.5));
            chip.write(t, bank, bits);
            break;
          }
          case 5:
            chip.preAll(t);
            break;
        }

        if (step % 16 == 0) {
            // Envelope invariant on a sampled row.
            chip.flushAll(t + 10);
            t += 10;
            for (ColAddr c = 0; c < 8; ++c) {
                const double v = chip.bank(bank).cellVoltage(row, c);
                ASSERT_GE(v, -0.05) << "step " << step;
                ASSERT_LE(v, 1.60) << "step " << step;
            }
        }
    }
    // The chip must still work normally afterwards.
    chip.flushAll(t + 100);
    t += 100;
    chip.preAll(t);
    t += 10;
    BitVector data(64, true);
    chip.act(t, 0, 5);
    chip.write(t + 6, 0, data);
    chip.pre(t + 20, 0);
    chip.act(t + 30, 0, 5);
    const BitVector back = chip.read(t + 36, 0);
    chip.pre(t + 50, 0);
    EXPECT_TRUE(back == data) << "chip wedged after fuzzing";
}

} // namespace

class FuzzFsm : public ::testing::TestWithParam<DramGroup>
{
};

TEST_P(FuzzFsm, SurvivesRandomCommandStreams)
{
    setVerbose(false); // the streams provoke plenty of warnings
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
        fuzzOneChip(GetParam(), seed, 400);
}

INSTANTIATE_TEST_SUITE_P(
    RepresentativeGroups, FuzzFsm,
    ::testing::Values(DramGroup::B, DramGroup::C, DramGroup::E,
                      DramGroup::J, DramGroup::M),
    [](const auto &info) { return groupName(info.param); });

TEST(FuzzRefresh, RandomRefreshInterleaving)
{
    setVerbose(false);
    DramChip chip(DramGroup::B, 9, tinyParams());
    Rng rng(77);
    Cycles t = 10;
    for (int step = 0; step < 100; ++step) {
        chip.preAll(t);
        t += 10;
        if (rng.chance(0.3)) {
            chip.refresh(t);
            t += 70;
        }
        chip.act(t, 0, static_cast<RowAddr>(rng.below(32)));
        t += rng.below(20) + 1;
        chip.pre(t, 0);
        t += 6;
        chip.advanceTime(rng.uniform(0.0, 0.1));
    }
    SUCCEED();
}
