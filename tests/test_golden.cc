/**
 * @file
 * Golden-output regression tests: the CSV renderings of the
 * capability, F-MAJ-coverage, and PUF studies at fixed seeds are
 * hashed with SHA-256 and compared against checked-in digests. Any
 * change to the physics model, the RNG draw order, or the study
 * plumbing that alters even one output bit flips the digest - this is
 * what lets the columnar kernel layer claim bit-exactness against the
 * scalar reference implementation it replaced.
 *
 * Regenerating the digests (only after an *intentional* behaviour
 * change, reviewed as such):
 *
 *     FRACDRAM_GOLDEN_REGEN=1 ./build/tests/test_golden
 *
 * prints the current digests in copy-pasteable form; paste them over
 * the kGolden* constants below. The digests are only valid for the
 * default build flags: FRACDRAM_NATIVE=ON builds may fuse
 * multiply-add chains differently (FMA), so the comparisons are
 * skipped there (the regenerate mode still works).
 */

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "analysis/capability.hh"
#include "analysis/fmaj_study.hh"
#include "analysis/puf_study.hh"
#include "common/csv.hh"
#include "common/logging.hh"
#include "common/sha256.hh"
#include "common/table.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"
#include "trng/quac_trng.hh"

using namespace fracdram;

namespace
{

// SHA-256 of the studies' CSV renderings at the fixed default seeds.
const char *const kGoldenCapability =
    "addc794357f4267a8d2e8dc2266d17e2bed9830deb99d81d5a1900973b103686";
const char *const kGoldenFmajCoverage =
    "e176de170066f68fbd34a75924fa682a9fbbb26c1c2e2cc4ab4e9a79bc8ac428";
const char *const kGoldenPuf =
    "da3e5e88544769e0f22fb43895eb405705d9262c557e24201e7d43e9512755bc";

bool
regenMode()
{
    const char *env = std::getenv("FRACDRAM_GOLDEN_REGEN");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

std::string
digestOf(const CsvWriter &csv)
{
    const std::string text = csv.render();
    return Sha256::toHex(Sha256::hash(
        reinterpret_cast<const std::uint8_t *>(text.data()),
        text.size()));
}

void
checkDigest(const char *name, const char *expected,
            const CsvWriter &csv)
{
    const std::string actual = digestOf(csv);
    if (regenMode()) {
        std::printf("const char *const %s =\n    \"%s\";\n", name,
                    actual.c_str());
        return;
    }
#ifdef FRACDRAM_NATIVE_BUILD
    GTEST_SKIP() << "FRACDRAM_NATIVE changes FP contraction; golden "
                    "digests only hold for the default build flags";
#endif
    EXPECT_EQ(actual, expected)
        << name << " drifted: the studies no longer produce "
        << "bit-identical output. If the change is intentional, "
        << "regenerate with FRACDRAM_GOLDEN_REGEN=1 (see file "
        << "header); otherwise the kernel layer broke the "
        << "stream-equivalence invariant (see DESIGN.md, Columnar "
        << "kernels).";
}

} // namespace

TEST(Golden, CapabilityScan)
{
    setVerbose(false);
    CsvWriter csv({"group", "vendor", "freq_mhz", "chips", "frac",
                   "three_row", "four_row"});
    for (const auto &row : analysis::scanAllGroups()) {
        csv.addRow({sim::groupName(row.group), row.vendor,
                    std::to_string(row.freqMhz),
                    std::to_string(row.numChips),
                    row.probed.frac ? "1" : "0",
                    row.probed.threeRow ? "1" : "0",
                    row.probed.fourRow ? "1" : "0"});
    }
    checkDigest("kGoldenCapability", kGoldenCapability, csv);
}

TEST(Golden, FmajCoverage)
{
    setVerbose(false);
    // The bench's --quick configuration: small but exercises the
    // full charge-share / interrupted-close / sense pipeline.
    analysis::FMajStudyParams params;
    params.modules = 1;
    params.subarraysPerModule = 2;
    params.dram.colsPerRow = 128;
    const auto result =
        analysis::fmajCoverageStudy(sim::DramGroup::B, params);

    CsvWriter csv({"frac_row", "init", "num_fracs", "coverage",
                   "ci_half"});
    for (const auto &s : result.series) {
        for (std::size_t n = 0; n < s.byNumFracs.size(); ++n) {
            csv.addRow({"R" + std::to_string(s.fracRowIndex),
                        s.initOnes ? "ones" : "zeros",
                        std::to_string(n),
                        TextTable::num(s.byNumFracs[n].mean, 6),
                        TextTable::num(s.byNumFracs[n].ciHalf, 6)});
        }
    }
    if (result.hasBaseline) {
        csv.addRow({"baseline_maj3", "-", "-",
                    TextTable::num(result.baselineMaj3, 6), "-"});
    }
    checkDigest("kGoldenFmajCoverage", kGoldenFmajCoverage, csv);
}

TEST(Golden, PufStudy)
{
    setVerbose(false);
    // The bench's --quick configuration; covers Frac (interrupted
    // close), leakage decay, and full activation read-out per group.
    analysis::PufStudyParams params;
    params.challenges = 10;
    params.dram.colsPerRow = 1024;
    const auto r = analysis::pufStudy(params);

    CsvWriter csv({"group", "kind", "hd"});
    for (const auto &g : r.groups) {
        for (const double d : g.intraHd)
            csv.addRow({sim::groupName(g.group), "intra",
                        TextTable::num(d, 6)});
        for (const double d : g.interHd)
            csv.addRow({sim::groupName(g.group), "inter",
                        TextTable::num(d, 6)});
    }
    for (const double d : r.crossGroupInterHd)
        csv.addRow({"cross", "inter", TextTable::num(d, 6)});
    checkDigest("kGoldenPuf", kGoldenPuf, csv);
}

namespace
{

/** Run telemetry on and off; the guard restores the off state. */
struct TelemetryToggle
{
    explicit TelemetryToggle(bool on) { telemetry::setEnabled(on); }
    ~TelemetryToggle()
    {
        telemetry::setEnabled(false);
        telemetry::Metrics::instance().reset();
        telemetry::resetTrace();
    }
};

std::string
capabilityDigest()
{
    CsvWriter csv({"group", "frac", "three_row", "four_row"});
    for (const auto &row : analysis::scanAllGroups()) {
        csv.addRow({sim::groupName(row.group),
                    row.probed.frac ? "1" : "0",
                    row.probed.threeRow ? "1" : "0",
                    row.probed.fourRow ? "1" : "0"});
    }
    return digestOf(csv);
}

std::string
trngDigest()
{
    sim::DramChip chip(sim::DramGroup::B, /*serial=*/1);
    softmc::MemoryController mc(chip, false);
    trng::QuacTrng gen(mc);
    const auto bits = gen.generate(2048);
    std::string text;
    for (std::size_t i = 0; i < bits.size(); ++i)
        text.push_back(bits.get(i) ? '1' : '0');
    return Sha256::toHex(Sha256::hash(
        reinterpret_cast<const std::uint8_t *>(text.data()),
        text.size()));
}

} // namespace

// Telemetry records clocks and counts but never draws from any RNG,
// so every study output must be bit-identical with recording on or
// off (FRACDRAM_TELEMETRY=0 vs =1). These run the same pipeline
// under both states and compare digests directly - they hold on any
// build flags, native included.

TEST(Golden, CapabilityUnchangedByTelemetry)
{
    setVerbose(false);
    std::string off, on;
    {
        TelemetryToggle toggle(false);
        off = capabilityDigest();
    }
    {
        TelemetryToggle toggle(true);
        on = capabilityDigest();
    }
    EXPECT_EQ(off, on)
        << "telemetry recording perturbed the capability scan; the "
        << "instrumentation must stay off the RNG streams";
}

TEST(Golden, TrngUnchangedByTelemetry)
{
    setVerbose(false);
    std::string off, on;
    {
        TelemetryToggle toggle(false);
        off = trngDigest();
    }
    {
        TelemetryToggle toggle(true);
        on = trngDigest();
    }
    EXPECT_EQ(off, on)
        << "telemetry recording perturbed the TRNG bit stream; the "
        << "instrumentation must stay off the RNG streams";
}
