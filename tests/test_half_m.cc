/**
 * @file
 * Tests of the Half-m primitive.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "core/half_m.hh"
#include "core/multi_row.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

using namespace fracdram;
using namespace fracdram::sim;
using namespace fracdram::softmc;
using namespace fracdram::core;

namespace
{

DramParams
tinyParams()
{
    DramParams p;
    p.numBanks = 1;
    p.subarraysPerBank = 1;
    p.rowsPerSubarray = 32;
    p.colsPerRow = 512;
    return p;
}

} // namespace

class HalfMTest : public ::testing::Test
{
  protected:
    DramChip chip{DramGroup::B, 1, tinyParams()};
    MemoryController mc{chip, false};
    std::vector<OpenedRow> opened = plannedOpenedRows(chip, 8, 1);
};

TEST_F(HalfMTest, OpensTheFourPaperRows)
{
    ASSERT_EQ(opened.size(), 4u);
    std::set<RowAddr> rows;
    for (const auto &o : opened)
        rows.insert(o.row);
    EXPECT_EQ(rows, (std::set<RowAddr>{0, 1, 8, 9}));
}

TEST_F(HalfMTest, InitPatternsCheckerAssignment)
{
    // Half columns: one in R1/R3, zero in R2/R4.
    BitVector mask(512, true);
    const auto inits = halfMInitPatterns(opened, mask, false);
    ASSERT_EQ(inits.size(), 4u);
    EXPECT_DOUBLE_EQ(inits.at(8).hammingWeight(), 1.0);  // R1
    EXPECT_DOUBLE_EQ(inits.at(0).hammingWeight(), 1.0);  // R3
    EXPECT_DOUBLE_EQ(inits.at(1).hammingWeight(), 0.0);  // R2
    EXPECT_DOUBLE_EQ(inits.at(9).hammingWeight(), 0.0);  // R4
}

TEST_F(HalfMTest, InitPatternsBackground)
{
    BitVector mask(512, false);
    mask.set(0, true);
    const auto ones = halfMInitPatterns(opened, mask, true);
    // Non-masked columns hold the background in all four rows.
    for (const auto &[row, bits] : ones) {
        for (std::size_t c = 1; c < 16; ++c)
            EXPECT_TRUE(bits.get(c)) << "row " << row;
    }
    const auto zeros = halfMInitPatterns(opened, mask, false);
    for (const auto &[row, bits] : zeros) {
        for (std::size_t c = 1; c < 16; ++c)
            EXPECT_FALSE(bits.get(c)) << "row " << row;
    }
}

TEST_F(HalfMTest, InitPatternsRequireFourRows)
{
    std::vector<OpenedRow> three(opened.begin(), opened.end() - 1);
    EXPECT_DEATH(halfMInitPatterns(three, BitVector(512, true), false),
                 "four-row");
}

TEST_F(HalfMTest, HalfColumnsLandBetweenRails)
{
    BitVector mask(512, true);
    halfM(mc, 0, 8, 1, halfMInitPatterns(opened, mask, false));
    // Voltage of the result rows is neither rail on average.
    OnlineStats s;
    for (ColAddr c = 0; c < 512; ++c)
        s.add(chip.bank(0).cellVoltage(0, c));
    EXPECT_GT(s.mean(), 0.02);
    EXPECT_LT(s.mean(), 1.2);
}

TEST_F(HalfMTest, WeakOnesStayReadableAsOnes)
{
    std::map<RowAddr, BitVector> inits;
    for (const auto &o : opened)
        inits.emplace(o.row, BitVector(512, true));
    halfM(mc, 0, 8, 1, inits);
    // Weak ones read back as ones on the vast majority of columns.
    for (const auto &o : opened) {
        EXPECT_GT(mc.readRowVoltage(0, o.row).hammingWeight(), 0.9)
            << "row " << o.row;
    }
}

TEST_F(HalfMTest, WeakZerosStayReadableAsZeros)
{
    std::map<RowAddr, BitVector> inits;
    for (const auto &o : opened)
        inits.emplace(o.row, BitVector(512, false));
    halfM(mc, 0, 8, 1, inits);
    for (const auto &o : opened) {
        EXPECT_LT(mc.readRowVoltage(0, o.row).hammingWeight(), 0.1)
            << "row " << o.row;
    }
}

TEST_F(HalfMTest, MixedMaskProducesMixedOutcome)
{
    // Half columns end near Vdd/2, background columns near the rail.
    BitVector mask(512, false);
    for (ColAddr c = 0; c < 512; c += 2)
        mask.set(c, true);
    halfM(mc, 0, 8, 1, halfMInitPatterns(opened, mask, true));
    OnlineStats half_cols, bg_cols;
    for (ColAddr c = 0; c < 512; ++c) {
        const double v = chip.bank(0).cellVoltage(0, c);
        (mask.get(c) ? half_cols : bg_cols).add(v);
    }
    EXPECT_GT(bg_cols.mean(), 1.0);
    EXPECT_LT(half_cols.mean(), bg_cols.mean() - 0.2);
}

TEST(HalfMGroupC, WorksOnFourRowOnlyGroups)
{
    // Groups C/D cannot do three-row MAJ3 but do support Half-m.
    DramChip chip(DramGroup::C, 1, tinyParams());
    MemoryController mc(chip, false);
    const auto opened = plannedOpenedRows(chip, 8, 1);
    ASSERT_EQ(opened.size(), 4u);
    BitVector mask(512, true);
    halfM(mc, 0, 8, 1, halfMInitPatterns(opened, mask, false));
    // Group C's strong first-row weight biases the partially-engaged
    // sense amps toward one, but the cells stay off the full rail.
    OnlineStats s;
    for (ColAddr c = 0; c < 512; ++c)
        s.add(chip.bank(0).cellVoltage(0, c));
    EXPECT_GT(s.mean(), 0.02);
    EXPECT_LT(s.mean(), 1.45);
}
