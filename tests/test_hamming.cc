/**
 * @file
 * Tests of the Hamming-distance metrics.
 */

#include <gtest/gtest.h>

#include "puf/hamming.hh"

using namespace fracdram;
using namespace fracdram::puf;

TEST(Hamming, Normalized)
{
    const auto a = BitVector::fromString("1111");
    const auto b = BitVector::fromString("1001");
    EXPECT_DOUBLE_EQ(normalizedHammingDistance(a, b), 0.5);
    EXPECT_DOUBLE_EQ(normalizedHammingDistance(a, a), 0.0);
}

TEST(Hamming, SizeMismatchDies)
{
    const auto a = BitVector::fromString("11");
    const auto b = BitVector::fromString("111");
    EXPECT_DEATH(normalizedHammingDistance(a, b), "sizes");
}

TEST(HammingStudyTest, PairwiseCount)
{
    const std::vector<BitVector> rs = {
        BitVector::fromString("00"),
        BitVector::fromString("01"),
        BitVector::fromString("11"),
    };
    const auto d = HammingStudy::pairwiseDistances(rs);
    ASSERT_EQ(d.size(), 3u); // C(3,2)
    EXPECT_DOUBLE_EQ(d[0], 0.5); // 00 vs 01
    EXPECT_DOUBLE_EQ(d[1], 1.0); // 00 vs 11
    EXPECT_DOUBLE_EQ(d[2], 0.5); // 01 vs 11
}

TEST(HammingStudyTest, PairedDistances)
{
    const std::vector<BitVector> a = {BitVector::fromString("0000")};
    const std::vector<BitVector> b = {BitVector::fromString("0011")};
    const auto d = HammingStudy::pairedDistances(a, b);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_DOUBLE_EQ(d[0], 0.5);
    EXPECT_DEATH(HammingStudy::pairedDistances(a, {}), "sizes differ");
}

TEST(HammingStudyTest, MeanWeight)
{
    const std::vector<BitVector> rs = {
        BitVector::fromString("1111"),
        BitVector::fromString("0000"),
    };
    EXPECT_DOUBLE_EQ(HammingStudy::meanHammingWeight(rs), 0.5);
    EXPECT_DOUBLE_EQ(HammingStudy::meanHammingWeight({}), 0.0);
}
