/**
 * @file
 * Integration tests: full multi-module flows spanning the command
 * layer, the primitives, and the use cases.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/fracdram.hh"
#include "core/frac_op.hh"
#include "core/maj3.hh"
#include "core/multi_row.hh"
#include "core/rowclone.hh"
#include "puf/extractor.hh"
#include "puf/hamming.hh"
#include "puf/nist.hh"
#include "puf/puf.hh"

using namespace fracdram;
using namespace fracdram::sim;
using namespace fracdram::core;

namespace
{

DramParams
smallParams()
{
    DramParams p;
    p.numBanks = 2;
    p.subarraysPerBank = 1;
    p.rowsPerSubarray = 32;
    p.colsPerRow = 512;
    return p;
}

BitVector
randomBits(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    BitVector v(n);
    for (std::size_t i = 0; i < n; ++i)
        v.set(i, rng.chance(0.5));
    return v;
}

} // namespace

TEST(Integration, ComputePipelineWithOperandStaging)
{
    // ComputeDRAM-style flow: stage operands with in-DRAM copies from
    // "home" rows into the reserved compute rows, run MAJ3, copy the
    // result back out.
    FracDram dram(DramGroup::B, 1, smallParams());
    auto &mc = dram.controller();
    const std::size_t cols = 512;

    const auto a = randomBits(cols, 1);
    const auto b = randomBits(cols, 2);
    const auto c = randomBits(cols, 3);
    // Home rows outside the compute sub-array block.
    mc.writeRowVoltage(0, 16, a);
    mc.writeRowVoltage(0, 17, b);
    mc.writeRowVoltage(0, 18, c);

    // Stage into rows {0,1,2} with in-DRAM copies (no bus data).
    rowCopy(mc, 0, 16, 0);
    rowCopy(mc, 0, 17, 1);
    rowCopy(mc, 0, 18, 2);
    const auto result = maj3InPlace(mc, 0, 1, 2);
    // Copy result out to a home row and read it from there.
    rowCopy(mc, 0, 0, 20);
    const auto out = mc.readRowVoltage(0, 20);

    const auto expected = softwareMaj3(a, b, c);
    const double err =
        static_cast<double>(out.hammingDistance(expected)) /
        static_cast<double>(cols);
    EXPECT_LT(err, 0.15);
    EXPECT_TRUE(out == result);
}

TEST(Integration, PufEnrollmentSurvivesRefreshAndTime)
{
    // A realistic lifecycle: enroll, serve normal traffic with
    // periodic refresh, authenticate much later.
    FracDram dram(DramGroup::F, 9, smallParams());
    auto &mc = dram.controller();
    puf::FracPuf device_puf(mc, 10);
    const puf::Challenge challenge{1, 7};
    const auto enrolled = device_puf.evaluate(challenge);

    // Normal operation: user data + refresh ticks for ~1 second.
    const auto user_data = randomBits(512, 4);
    dram.writeRow(0, 3, user_data);
    for (int i = 0; i < 16; ++i) {
        mc.waitSeconds(0.064);
        dram.refreshManager().tick();
    }
    EXPECT_TRUE(dram.readRow(0, 3) == user_data);

    // Authentication after the wait: same fingerprint.
    const auto response = device_puf.evaluate(challenge);
    EXPECT_LT(puf::normalizedHammingDistance(enrolled, response),
              0.1);
}

TEST(Integration, WhitenedResponsesLookRandomAtSmallScale)
{
    // End-to-end PUF -> Von Neumann -> basic NIST subset.
    DramParams params = smallParams();
    params.colsPerRow = 4096;
    sim::DramChip chip(DramGroup::A, 3, params);
    softmc::MemoryController mc(chip, false);
    puf::FracPuf device_puf(mc, 10);
    device_puf.setDiscardAfterEvaluate(true);

    BitVector whitened;
    for (const auto &c : device_puf.makeChallenges(60)) {
        whitened.append(puf::VonNeumannExtractor::extract(
            device_puf.evaluate(c)));
        if (whitened.size() > 30000)
            break;
    }
    ASSERT_GT(whitened.size(), 30000u);
    EXPECT_TRUE(puf::nist::frequency(whitened).passed());
    EXPECT_TRUE(puf::nist::runs(whitened).passed());
    EXPECT_TRUE(puf::nist::blockFrequency(whitened).passed());
    EXPECT_TRUE(puf::nist::serial(whitened, 8).passed());
}

TEST(Integration, FracValuesSurviveOtherRowTraffic)
{
    // Activity on other rows of the same bank must not disturb a
    // stored fractional value (only activations of its own row do).
    FracDram dram(DramGroup::B, 2, smallParams());
    auto &mc = dram.controller();
    mc.fillRowVoltage(0, 10, true);
    frac(mc, 0, 10, 10);
    const auto before = [&] {
        double sum = 0.0;
        for (ColAddr c = 0; c < 64; ++c)
            sum += dram.chip().bank(0).cellVoltage(10, c);
        return sum;
    }();

    for (int i = 0; i < 8; ++i) {
        dram.writeRow(0, 20 + (i % 4), randomBits(512, 100 + i));
        dram.readRow(0, 20 + (i % 4));
    }

    double after = 0.0;
    for (ColAddr c = 0; c < 64; ++c)
        after += dram.chip().bank(0).cellVoltage(10, c);
    EXPECT_NEAR(after, before, 0.5); // only leakage-scale change
}

TEST(Integration, CrossGroupPortability)
{
    // The same application code runs on every Frac-capable group.
    for (const auto g : fracCapableGroups()) {
        FracDram dram(g, 11, smallParams());
        const auto data = randomBits(512, 5);
        dram.writeRow(0, 2, data);
        ASSERT_TRUE(dram.readRow(0, 2) == data) << groupName(g);
        const auto fp1 = dram.fracReadout(0, 4, 10);
        const auto fp2 = dram.fracReadout(0, 4, 10);
        EXPECT_LT(puf::normalizedHammingDistance(fp1, fp2), 0.1)
            << groupName(g);
        if (dram.canMajority()) {
            const std::array<BitVector, 3> ops = {
                BitVector(512, true), BitVector(512, false),
                BitVector(512, true)};
            EXPECT_GT(dram.majority(0, ops).hammingWeight(), 0.75)
                << groupName(g);
        }
    }
}

TEST(Integration, TimingCheckerGroupIsFracProof)
{
    // The full primitive arsenal bounces off a checker vendor: data
    // stays exactly as written.
    sim::DramChip chip(DramGroup::K, 1, smallParams());
    softmc::MemoryController mc(chip, false);
    const auto data = randomBits(512, 6);
    mc.writeRow(0, 1, data);
    mc.writeRow(0, 2, data);

    frac(mc, 0, 1, 5);
    multiRowActivate(mc, 0, 1, 2);
    multiRowActivateInterrupted(mc, 0, 8, 1);
    // The checker dropped the sequences' too-early PRECHARGEs, which
    // can leave a bank open; close it the compliant way.
    mc.prechargeAllBanks();

    EXPECT_TRUE(mc.readRow(0, 1) == data);
    EXPECT_TRUE(mc.readRow(0, 2) == data);
}
