/**
 * @file
 * ISA-equivalence property tests for the dispatched columnar kernels:
 * every vector tier this binary compiled and this machine can run
 * must produce bit-identical output to the scalar reference, for
 * every kernel, over random inputs at sizes covering every vector
 * tail length (n % 16 in [0, 15]) plus word-boundary and row-sized
 * cases. This is the contract that lets the golden-digest suite hold
 * regardless of FRACDRAM_ISA (see DESIGN.md, "SIMD dispatch").
 */

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "sim/kernels.hh"
#include "sim/kernels_dispatch.hh"

using namespace fracdram;
using namespace fracdram::sim::kernels;

namespace
{

/** Sizes covering all 16-lane tails, 64-bit word edges, and a row. */
const std::vector<std::size_t> &
testSizes()
{
    static const std::vector<std::size_t> sizes = [] {
        std::vector<std::size_t> s;
        for (std::size_t n = 0; n <= 16; ++n)
            s.push_back(n);
        for (const std::size_t n : {63, 64, 65, 127, 128, 129})
            s.push_back(n);
        for (std::size_t n = 1000; n < 1016; ++n)
            s.push_back(n);
        s.push_back(16384);
        return s;
    }();
    return sizes;
}

struct Tier
{
    const char *name;
    const KernelTable *table;
};

/** Every runnable non-scalar tier (may be empty on old machines). */
std::vector<Tier>
vectorTiers()
{
    std::vector<Tier> tiers;
    for (const simd::Isa isa : {simd::Isa::Avx2, simd::Isa::Avx512}) {
        const KernelTable *t = kernelTableForIsa(isa);
        if (t != nullptr)
            tiers.push_back({simd::isaName(isa), t});
    }
    return tiers;
}

class Inputs
{
  public:
    explicit Inputs(std::uint64_t seed, std::size_t n) : gen_(seed)
    {
        volts = floats(n, 0.0f, 1.0f);
        coupling = floats(n, 0.0f, 0.2f);
        alpha = floats(n, 0.01f, 0.99f);
        off = floats(n, -0.05f, 0.05f);
        sa = floats(n, -0.1f, 0.1f);
        num = doubles(n, 0.0, 1.0);
        den = doubles(n, 0.5, 2.0);
        eq = doubles(n, 0.0, 1.0);
        noise = doubles(n, -0.1, 0.1);
        mul = doubles(n, 0.9, 1.0);
        dec.resize(n);
        words.resize((n + 63) / 64);
        for (auto &d : dec)
            d = static_cast<std::uint8_t>(gen_());
        for (auto &w : words)
            w = gen_();
    }

    std::vector<float> volts, coupling, alpha, off, sa;
    std::vector<double> num, den, eq, noise, mul;
    std::vector<std::uint8_t> dec;
    std::vector<std::uint64_t> words;

  private:
    std::vector<float> floats(std::size_t n, float lo, float hi)
    {
        std::uniform_real_distribution<float> d(lo, hi);
        std::vector<float> v(n);
        for (auto &x : v)
            x = d(gen_);
        return v;
    }
    std::vector<double> doubles(std::size_t n, double lo, double hi)
    {
        std::uniform_real_distribution<double> d(lo, hi);
        std::vector<double> v(n);
        for (auto &x : v)
            x = d(gen_);
        return v;
    }
    std::mt19937_64 gen_;
};

template <typename T>
::testing::AssertionResult
bitIdentical(const std::vector<T> &got, const std::vector<T> &want)
{
    if (got.size() != want.size())
        return ::testing::AssertionFailure() << "size mismatch";
    if (!got.empty() &&
        std::memcmp(got.data(), want.data(),
                    got.size() * sizeof(T)) != 0) {
        for (std::size_t i = 0; i < got.size(); ++i)
            if (std::memcmp(&got[i], &want[i], sizeof(T)) != 0)
                return ::testing::AssertionFailure()
                       << "first mismatch at index " << i;
    }
    return ::testing::AssertionSuccess();
}

} // namespace

TEST(KernelsIsaTest, TiersReported)
{
    // Informational: record which tiers this run actually covered.
    const auto tiers = vectorTiers();
    std::string names;
    for (const auto &t : tiers)
        names += std::string(" ") + t.name;
    RecordProperty("vector_tiers",
                   tiers.empty() ? "none" : names.c_str());
    SUCCEED();
}

TEST(KernelsIsaTest, DecayMultiply)
{
    const KernelTable &ref = scalarKernelTable();
    for (const auto &tier : vectorTiers())
        for (const std::size_t n : testSizes()) {
            Inputs in(n * 2 + 1, n);
            auto got = in.volts;
            auto want = in.volts;
            tier.table->decayMultiply(got.data(), in.mul.data(), n);
            ref.decayMultiply(want.data(), in.mul.data(), n);
            EXPECT_TRUE(bitIdentical(got, want))
                << tier.name << " n=" << n;
        }
}

TEST(KernelsIsaTest, ChargeAccumulate)
{
    const KernelTable &ref = scalarKernelTable();
    for (const auto &tier : vectorTiers())
        for (const std::size_t n : testSizes()) {
            Inputs in(n * 3 + 1, n);
            auto gnum = in.num, gden = in.den;
            auto wnum = in.num, wden = in.den;
            tier.table->chargeAccumulate(gnum.data(), gden.data(),
                                         in.volts.data(),
                                         in.coupling.data(), 0.37, n);
            ref.chargeAccumulate(wnum.data(), wden.data(),
                                 in.volts.data(), in.coupling.data(),
                                 0.37, n);
            EXPECT_TRUE(bitIdentical(gnum, wnum))
                << tier.name << " num n=" << n;
            EXPECT_TRUE(bitIdentical(gden, wden))
                << tier.name << " den n=" << n;
        }
}

TEST(KernelsIsaTest, Equilibrium)
{
    const KernelTable &ref = scalarKernelTable();
    for (const auto &tier : vectorTiers())
        for (const std::size_t n : testSizes()) {
            Inputs in(n * 5 + 1, n);
            std::vector<double> got(n), want(n);
            tier.table->equilibrium(got.data(), in.num.data(),
                                    in.den.data(), n);
            ref.equilibrium(want.data(), in.num.data(), in.den.data(),
                            n);
            EXPECT_TRUE(bitIdentical(got, want))
                << tier.name << " n=" << n;
        }
}

TEST(KernelsIsaTest, SenseDecide)
{
    const KernelTable &ref = scalarKernelTable();
    for (const auto &tier : vectorTiers())
        for (const std::size_t n : testSizes()) {
            Inputs in(n * 7 + 1, n);
            std::vector<std::uint8_t> got(n, 0xcc), want(n, 0xcc);
            tier.table->senseDecide(got.data(), in.eq.data(),
                                    in.sa.data(), in.noise.data(), 0.5,
                                    n);
            ref.senseDecide(want.data(), in.eq.data(), in.sa.data(),
                            in.noise.data(), 0.5, n);
            EXPECT_TRUE(bitIdentical(got, want))
                << tier.name << " n=" << n;
        }
}

TEST(KernelsIsaTest, DriveRails)
{
    const KernelTable &ref = scalarKernelTable();
    for (const auto &tier : vectorTiers())
        for (const std::size_t n : testSizes()) {
            Inputs in(n * 11 + 1, n);
            auto got = in.volts;
            auto want = in.volts;
            tier.table->driveRails(got.data(), in.dec.data(), 1.1f, n);
            ref.driveRails(want.data(), in.dec.data(), 1.1f, n);
            EXPECT_TRUE(bitIdentical(got, want))
                << tier.name << " n=" << n;
        }
}

TEST(KernelsIsaTest, SettleToward)
{
    const KernelTable &ref = scalarKernelTable();
    for (const auto &tier : vectorTiers())
        for (const std::size_t n : testSizes()) {
            Inputs in(n * 13 + 1, n);
            auto got = in.volts;
            auto want = in.volts;
            tier.table->settleToward(got.data(), in.alpha.data(),
                                     in.eq.data(), in.off.data(), n);
            ref.settleToward(want.data(), in.alpha.data(),
                             in.eq.data(), in.off.data(), n);
            EXPECT_TRUE(bitIdentical(got, want))
                << tier.name << " n=" << n;
        }
}

TEST(KernelsIsaTest, FracSettle)
{
    const KernelTable &ref = scalarKernelTable();
    for (const auto &tier : vectorTiers())
        for (const std::size_t n : testSizes()) {
            Inputs in(n * 17 + 1, n);
            auto got = in.volts;
            auto want = in.volts;
            tier.table->fracSettle(got.data(), in.alpha.data(),
                                   in.coupling.data(), in.off.data(),
                                   in.noise.data(), 0.41, 0.3, 0.7, n);
            ref.fracSettle(want.data(), in.alpha.data(),
                           in.coupling.data(), in.off.data(),
                           in.noise.data(), 0.41, 0.3, 0.7, n);
            EXPECT_TRUE(bitIdentical(got, want))
                << tier.name << " n=" << n;
        }
}

TEST(KernelsIsaTest, RestoreTruncate)
{
    const KernelTable &ref = scalarKernelTable();
    for (const auto &tier : vectorTiers())
        for (const std::size_t n : testSizes()) {
            Inputs in(n * 19 + 1, n);
            auto got = in.volts;
            auto want = in.volts;
            tier.table->restoreTruncate(got.data(), 0.55, 0.93, n);
            ref.restoreTruncate(want.data(), 0.55, 0.93, n);
            EXPECT_TRUE(bitIdentical(got, want))
                << tier.name << " n=" << n;
        }
}

TEST(KernelsIsaTest, FillFromBits)
{
    const KernelTable &ref = scalarKernelTable();
    for (const auto &tier : vectorTiers())
        for (const std::size_t n : testSizes())
            for (const bool invert : {false, true}) {
                Inputs in(n * 23 + invert, n);
                std::vector<float> got(n, -7.0f), want(n, -7.0f);
                tier.table->fillFromBits(got.data(), in.words.data(),
                                         invert, 1.1f, n);
                ref.fillFromBits(want.data(), in.words.data(), invert,
                                 1.1f, n);
                EXPECT_TRUE(bitIdentical(got, want))
                    << tier.name << " n=" << n
                    << " invert=" << invert;
            }
}

TEST(KernelsIsaTest, PackDecisions)
{
    const KernelTable &ref = scalarKernelTable();
    for (const auto &tier : vectorTiers())
        for (const std::size_t n : testSizes())
            for (const bool invert : {false, true}) {
                Inputs in(n * 29 + invert, n);
                const std::size_t nwords = (n + 63) / 64;
                std::vector<std::uint64_t> got(nwords, 0xdeadbeef),
                    want(nwords, 0xdeadbeef);
                tier.table->packDecisions(got.data(), in.dec.data(),
                                          invert, n);
                ref.packDecisions(want.data(), in.dec.data(), invert,
                                  n);
                EXPECT_TRUE(bitIdentical(got, want))
                    << tier.name << " n=" << n
                    << " invert=" << invert;
            }
}

TEST(KernelsIsaTest, PublicEntryPointsUseActiveTable)
{
    // The dispatched public functions and the active table must agree
    // (one indirection, resolved once).
    const KernelTable &active = activeKernelTable();
    Inputs in(99, 256);
    auto via_public = in.volts;
    auto via_table = in.volts;
    decayMultiply(via_public.data(), in.mul.data(), 256);
    active.decayMultiply(via_table.data(), in.mul.data(), 256);
    EXPECT_TRUE(bitIdentical(via_public, via_table));
}
