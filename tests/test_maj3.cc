/**
 * @file
 * Tests of the ComputeDRAM-style in-memory MAJ3 on group B.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/maj3.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

using namespace fracdram;
using namespace fracdram::sim;
using namespace fracdram::softmc;
using namespace fracdram::core;

namespace
{

DramParams
tinyParams()
{
    DramParams p;
    p.numBanks = 1;
    p.subarraysPerBank = 1;
    p.rowsPerSubarray = 32;
    p.colsPerRow = 512;
    return p;
}

BitVector
randomBits(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    BitVector v(n);
    for (std::size_t i = 0; i < n; ++i)
        v.set(i, rng.chance(0.5));
    return v;
}

} // namespace

TEST(SoftwareMaj3, TruthTable)
{
    const auto a = BitVector::fromString("00001111");
    const auto b = BitVector::fromString("00110011");
    const auto c = BitVector::fromString("01010101");
    EXPECT_EQ(softwareMaj3(a, b, c).toString(), "00010111");
}

TEST(SoftwareMaj3, SizeMismatchDies)
{
    const auto a = BitVector::fromString("01");
    const auto b = BitVector::fromString("011");
    EXPECT_DEATH(softwareMaj3(a, b, a), "sizes");
}

TEST(InMemoryMaj3, ConstantOperandCombos)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    const std::size_t cols = 512;

    // All six non-trivial constant combinations must yield the right
    // majority on the overwhelming majority of columns.
    const bool combos[6][3] = {
        {1, 0, 0}, {0, 1, 0}, {0, 0, 1},
        {0, 1, 1}, {1, 0, 1}, {1, 1, 0},
    };
    for (const auto &combo : combos) {
        std::map<RowAddr, BitVector> ops;
        ops.emplace(0, BitVector(cols, combo[0]));
        ops.emplace(1, BitVector(cols, combo[1]));
        ops.emplace(2, BitVector(cols, combo[2]));
        const auto result = maj3(mc, 0, 1, 2, ops);
        const int ones = static_cast<int>(combo[0]) + combo[1] +
                         combo[2];
        const double expected = ones >= 2 ? 1.0 : 0.0;
        EXPECT_NEAR(result.hammingWeight(), expected, 0.12)
            << combo[0] << combo[1] << combo[2];
    }
}

TEST(InMemoryMaj3, RandomOperandsMatchSoftwareOnMostColumns)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    const auto a = randomBits(512, 1);
    const auto b = randomBits(512, 2);
    const auto c = randomBits(512, 3);
    std::map<RowAddr, BitVector> ops;
    ops.emplace(0, a);
    ops.emplace(1, b);
    ops.emplace(2, c);
    const auto result = maj3(mc, 0, 1, 2, ops);
    const auto expected = softwareMaj3(a, b, c);
    const double err =
        static_cast<double>(result.hammingDistance(expected)) / 512.0;
    // The baseline operation is imperfect by design (the paper's 9.1%
    // error rate story) but must be clearly majority-computing.
    EXPECT_LT(err, 0.15);
}

TEST(InMemoryMaj3, ResultVisibleInAllThreeRows)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    std::map<RowAddr, BitVector> ops;
    ops.emplace(0, BitVector(512, true));
    ops.emplace(1, BitVector(512, true));
    ops.emplace(2, BitVector(512, false));
    maj3(mc, 0, 1, 2, ops);
    for (const RowAddr r : {0u, 1u, 2u}) {
        EXPECT_GT(mc.readRowVoltage(0, r).hammingWeight(), 0.85)
            << "row " << r;
    }
}
