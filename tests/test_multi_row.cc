/**
 * @file
 * Tests of multi-row activation through the public API.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "core/multi_row.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

using namespace fracdram;
using namespace fracdram::sim;
using namespace fracdram::softmc;
using namespace fracdram::core;

namespace
{

DramParams
tinyParams()
{
    DramParams p;
    p.numBanks = 1;
    p.subarraysPerBank = 1;
    p.rowsPerSubarray = 32;
    p.colsPerRow = 256;
    return p;
}

} // namespace

TEST(MultiRow, PlannedRowsMatchDecoder)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    const auto rows = plannedOpenedRows(chip, 1, 2);
    EXPECT_EQ(rows.size(), 3u);
    const auto rows4 = plannedOpenedRows(chip, 8, 1);
    EXPECT_EQ(rows4.size(), 4u);
}

TEST(MultiRow, PlannedRowsOnCheckerIsFirstRowOnly)
{
    DramChip chip(DramGroup::J, 1, tinyParams());
    const auto rows = plannedOpenedRows(chip, 1, 2);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].row, 1u);
}

TEST(MultiRow, AllOnesSharesToAllOnes)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    for (const RowAddr r : {0u, 1u, 2u})
        mc.fillRowVoltage(0, r, true);
    const auto result = multiRowActivate(mc, 0, 1, 2);
    EXPECT_GT(result.hammingWeight(), 0.99);
}

TEST(MultiRow, AllZerosSharesToAllZeros)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    for (const RowAddr r : {0u, 1u, 2u})
        mc.fillRowVoltage(0, r, false);
    const auto result = multiRowActivate(mc, 0, 1, 2);
    EXPECT_LT(result.hammingWeight(), 0.01);
}

TEST(MultiRow, ResultRestoredInAllOpenedRows)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    for (const RowAddr r : {0u, 1u, 2u})
        mc.fillRowVoltage(0, r, true);
    multiRowActivate(mc, 0, 1, 2);
    for (const RowAddr r : {0u, 1u, 2u}) {
        EXPECT_GT(mc.readRowVoltage(0, r).hammingWeight(), 0.99)
            << "row " << r;
    }
}

TEST(MultiRow, InterruptedLeavesRowsUnsensed)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    // Two high, two low: rows {0,1,8,9}.
    mc.fillRowVoltage(0, 8, true);
    mc.fillRowVoltage(0, 0, true);
    mc.fillRowVoltage(0, 1, false);
    mc.fillRowVoltage(0, 9, false);
    multiRowActivateInterrupted(mc, 0, 8, 1);
    // Cell voltages sit between the rails for most columns.
    OnlineStats s;
    for (ColAddr c = 0; c < 256; ++c)
        s.add(chip.bank(0).cellVoltage(0, c));
    EXPECT_GT(s.mean(), 0.1);
    EXPECT_LT(s.mean(), 1.4);
}

TEST(MultiRow, SequenceShape)
{
    const auto seq = buildMultiRowSequence(0, 1, 2, false);
    // PRE, idle, ACT, PRE, ACT back-to-back ...
    const auto &cmds = seq.commands();
    ASSERT_GE(cmds.size(), 5u);
    EXPECT_EQ(cmds[1].cmd.kind, CommandKind::Act);
    EXPECT_EQ(cmds[2].cmd.kind, CommandKind::Pre);
    EXPECT_EQ(cmds[3].cmd.kind, CommandKind::Act);
    EXPECT_EQ(cmds[2].cycle, cmds[1].cycle + 1);
    EXPECT_EQ(cmds[3].cycle, cmds[2].cycle + 1);
}

TEST(MultiRow, InterruptedSequenceHasTrailingPre)
{
    const auto seq = buildMultiRowSequence(0, 8, 1, true);
    const auto &cmds = seq.commands();
    ASSERT_EQ(cmds.size(), 5u);
    EXPECT_EQ(cmds[4].cmd.kind, CommandKind::Pre);
    EXPECT_EQ(cmds[4].cycle, cmds[3].cycle + 1);
}

TEST(MultiRow, NonCapableGroupActsAsSingleActivation)
{
    DramChip chip(DramGroup::E, 1, tinyParams());
    MemoryController mc(chip, false);
    mc.fillRowVoltage(0, 1, true);
    mc.fillRowVoltage(0, 2, false);
    multiRowActivate(mc, 0, 1, 2);
    // No charge sharing: both rows keep their values.
    EXPECT_GT(mc.readRowVoltage(0, 1).hammingWeight(), 0.99);
    EXPECT_LT(mc.readRowVoltage(0, 2).hammingWeight(), 0.01);
}
