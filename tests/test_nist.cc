/**
 * @file
 * Tests of the NIST SP 800-22 implementation: a good PRNG stream must
 * pass every test; pathological streams must fail the right ones.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "puf/nist.hh"

using namespace fracdram;
using namespace fracdram::puf::nist;

namespace
{

BitVector
prngStream(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    BitVector v(n);
    for (std::size_t i = 0; i < n; ++i)
        v.set(i, rng.chance(0.5));
    return v;
}

BitVector
alternatingStream(std::size_t n)
{
    BitVector v(n);
    for (std::size_t i = 0; i < n; ++i)
        v.set(i, i % 2);
    return v;
}

BitVector
biasedStream(std::size_t n, double p, std::uint64_t seed)
{
    Rng rng(seed);
    BitVector v(n);
    for (std::size_t i = 0; i < n; ++i)
        v.set(i, rng.chance(p));
    return v;
}

} // namespace

class NistGoodStream : public ::testing::Test
{
  protected:
    static const BitVector &
    stream()
    {
        static const BitVector s = prngStream(1 << 20, 7);
        return s;
    }
};

TEST_F(NistGoodStream, AllFifteenPass)
{
    const auto results = runAll(stream());
    ASSERT_EQ(results.size(), 15u);
    for (const auto &r : results)
        EXPECT_TRUE(r.passed()) << r.name << " minP=" << r.minP();
    EXPECT_TRUE(allPassed(results));
}

TEST_F(NistGoodStream, PValuesInRange)
{
    for (const auto &r : runAll(stream())) {
        for (const double p : r.pValues) {
            EXPECT_GE(p, 0.0) << r.name;
            EXPECT_LE(p, 1.0 + 1e-9) << r.name;
        }
    }
}

TEST(NistBadStreams, AllZerosFailsFrequency)
{
    const BitVector zeros(200000, false);
    EXPECT_FALSE(frequency(zeros).passed());
    EXPECT_FALSE(cumulativeSums(zeros).passed());
}

TEST(NistBadStreams, AlternatingFailsRunsButNotFrequency)
{
    const auto alt = alternatingStream(200000);
    EXPECT_TRUE(frequency(alt).passed()); // perfectly balanced
    EXPECT_FALSE(runs(alt).passed());     // way too many runs
    // The default m=16 needs n >= 2^18; use a window the stream
    // length supports.
    EXPECT_FALSE(serial(alt, 12).passed());
    EXPECT_FALSE(approximateEntropy(alt).passed());
}

TEST(NistBadStreams, BiasedStreamFailsFrequency)
{
    const auto biased = biasedStream(200000, 0.45, 3);
    EXPECT_FALSE(frequency(biased).passed());
}

TEST(NistBadStreams, PeriodicFailsDft)
{
    // Period-8 pattern: huge spectral peaks.
    BitVector v(1 << 17);
    for (std::size_t i = 0; i < v.size(); ++i)
        v.set(i, (i % 8) < 3);
    EXPECT_FALSE(discreteFourierTransform(v).passed());
}

TEST(NistBadStreams, LowComplexityFailsBerlekampMassey)
{
    // An LFSR-like (period 4) stream has tiny linear complexity.
    BitVector v(200000);
    for (std::size_t i = 0; i < v.size(); ++i)
        v.set(i, (i % 4) == 0);
    EXPECT_FALSE(linearComplexity(v).passed());
}

TEST(NistBadStreams, ConstantBlocksFailBlockFrequency)
{
    // First half ones, second half zeros: balanced overall.
    BitVector v(200000);
    for (std::size_t i = 0; i < 100000; ++i)
        v.set(i, true);
    EXPECT_TRUE(frequency(v).passed());
    EXPECT_FALSE(blockFrequency(v).passed());
    EXPECT_FALSE(longestRunOfOnes(v).passed());
}

TEST(NistApplicability, ShortStreamsNotApplicable)
{
    const auto tiny = prngStream(64, 1);
    EXPECT_FALSE(frequency(tiny).applicable);
    EXPECT_FALSE(universal(tiny).applicable);
    EXPECT_FALSE(binaryMatrixRank(tiny).applicable);
    // Not-applicable counts as passed (cannot judge).
    EXPECT_TRUE(frequency(tiny).passed());
}

TEST(NistHelpers, AperiodicTemplates)
{
    const auto ts = aperiodicTemplates(9, 8);
    ASSERT_EQ(ts.size(), 8u);
    for (const auto &t : ts) {
        EXPECT_EQ(t.size(), 9u);
        // No proper self-overlap: shifting the template over itself
        // never matches.
        for (std::size_t shift = 1; shift < 9; ++shift) {
            bool match = true;
            for (std::size_t i = 0; i + shift < 9; ++i)
                match &= t.get(i) == t.get(i + shift);
            EXPECT_FALSE(match);
        }
    }
}

TEST(NistHelpers, TestResultMinP)
{
    TestResult r;
    r.name = "x";
    r.pValues = {0.5, 0.02, 0.9};
    EXPECT_DOUBLE_EQ(r.minP(), 0.02);
    EXPECT_TRUE(r.passed(0.01));
    EXPECT_FALSE(r.passed(0.05));
}

TEST(NistKnownAnswer, FrequencySmallExample)
{
    // SP 800-22 Sec. 2.1.8 example: eps = 1011010101, n = 10,
    // s_obs = 0.632455, P-value = 0.527089. (Our implementation
    // requires n >= 100; check via a repeated-draw equivalent by
    // computing on the exact example with the guard relaxed is not
    // possible, so verify the erfc formula directly.)
    const double s_obs = 0.632455532;
    const double p = std::erfc(s_obs / std::sqrt(2.0));
    EXPECT_NEAR(p, 0.527089, 1e-5);
}
