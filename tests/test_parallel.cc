/**
 * @file
 * Tests of the deterministic parallel trial engine: pool mechanics
 * (exception propagation, nested-submit rejection), the thread-count
 * resolution chain, and the bit-identical-results contract the
 * analysis studies rely on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>

#include "analysis/capability.hh"
#include "analysis/fmaj_study.hh"
#include "common/logging.hh"
#include "common/parallel.hh"

using namespace fracdram;
using namespace fracdram::parallel;

namespace
{

struct Quiet
{
    Quiet() { setVerbose(false); }
} quiet;

/** Restore automatic thread resolution after each test. */
struct ThreadGuard
{
    ~ThreadGuard()
    {
        setThreads(0);
        unsetenv("FRACDRAM_THREADS");
    }
};

} // namespace

TEST(ThreadPoolTest, RunsSubmittedTasks)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.threadCount(), 3u);
    std::atomic<int> sum{0};
    std::vector<std::future<void>> futures;
    for (int i = 1; i <= 10; ++i)
        futures.push_back(pool.submit([&sum, i] { sum += i; }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(sum.load(), 55);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions)
{
    ThreadPool pool(2);
    auto f = pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, NestedSubmitRejected)
{
    ThreadPool pool(2);
    auto f = pool.submit([&pool] {
        // A worker enqueueing into its own pool can deadlock; the
        // pool refuses instead.
        pool.submit([] {});
    });
    EXPECT_THROW(f.get(), std::logic_error);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce)
{
    ThreadGuard guard;
    setThreads(4);
    std::vector<std::atomic<int>> hits(257);
    parallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, PropagatesTheFirstException)
{
    ThreadGuard guard;
    setThreads(4);
    EXPECT_THROW(
        parallelFor(64,
                    [](std::size_t i) {
                        if (i == 13)
                            throw std::runtime_error("index 13");
                    }),
        std::runtime_error);
}

TEST(ParallelForTest, NestedCallDegradesToSerial)
{
    ThreadGuard guard;
    setThreads(4);
    std::vector<std::atomic<int>> hits(8 * 8);
    parallelFor(8, [&](std::size_t outer) {
        // Inside a worker: must run inline, not deadlock or throw.
        parallelFor(8, [&](std::size_t inner) {
            ++hits[outer * 8 + inner];
        });
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ParallelMapTest, PreservesIndexOrder)
{
    ThreadGuard guard;
    setThreads(8);
    const auto out = parallelMap(
        100, [](std::size_t i) { return 3 * static_cast<int>(i); });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], 3 * static_cast<int>(i));
}

TEST(ThreadConfigTest, EnvOverrideAndSetThreads)
{
    ThreadGuard guard;
    setenv("FRACDRAM_THREADS", "3", 1);
    setThreads(0); // automatic: the env var wins
    EXPECT_EQ(threads(), 3u);
    setThreads(5); // explicit configuration beats the env var
    EXPECT_EQ(threads(), 5u);
    setThreads(0);
    setenv("FRACDRAM_THREADS", "nonsense", 1);
    EXPECT_GE(threads(), 1u); // bad env falls back to hardware
}

namespace
{

analysis::FMajStudyParams
tinyStudyParams()
{
    analysis::FMajStudyParams params;
    params.modules = 3;
    params.subarraysPerModule = 1;
    params.maxFracs = 2;
    params.dram.colsPerRow = 64;
    return params;
}

/** Exact (bitwise) equality of two study results. */
void
expectIdentical(const analysis::FMajCoverageResult &a,
                const analysis::FMajCoverageResult &b)
{
    ASSERT_EQ(a.series.size(), b.series.size());
    for (std::size_t s = 0; s < a.series.size(); ++s) {
        ASSERT_EQ(a.series[s].byNumFracs.size(),
                  b.series[s].byNumFracs.size());
        for (std::size_t n = 0; n < a.series[s].byNumFracs.size();
             ++n) {
            EXPECT_EQ(a.series[s].byNumFracs[n].mean,
                      b.series[s].byNumFracs[n].mean);
            EXPECT_EQ(a.series[s].byNumFracs[n].ciHalf,
                      b.series[s].byNumFracs[n].ciHalf);
        }
    }
    EXPECT_EQ(a.baselineMaj3, b.baselineMaj3);
}

} // namespace

TEST(DeterminismTest, StudyBitIdenticalAcrossThreadCounts)
{
    ThreadGuard guard;
    const auto params = tinyStudyParams();

    setThreads(1);
    const auto serial =
        analysis::fmajCoverageStudy(sim::DramGroup::B, params);
    setThreads(2);
    const auto two =
        analysis::fmajCoverageStudy(sim::DramGroup::B, params);
    setThreads(8);
    const auto eight =
        analysis::fmajCoverageStudy(sim::DramGroup::B, params);

    expectIdentical(serial, two);
    expectIdentical(serial, eight);
}

TEST(DeterminismTest, EnvSerialOverrideMatchesParallel)
{
    ThreadGuard guard;
    const auto params = tinyStudyParams();

    setenv("FRACDRAM_THREADS", "1", 1);
    setThreads(0);
    ASSERT_EQ(threads(), 1u);
    const auto env_serial =
        analysis::fmajCoverageStudy(sim::DramGroup::B, params);

    unsetenv("FRACDRAM_THREADS");
    setThreads(4);
    const auto parallel_run =
        analysis::fmajCoverageStudy(sim::DramGroup::B, params);

    expectIdentical(env_serial, parallel_run);
}

TEST(DeterminismTest, CapabilityScanBitIdentical)
{
    ThreadGuard guard;
    sim::DramParams params;
    params.colsPerRow = 128;

    setThreads(1);
    const auto serial = analysis::scanAllGroups(params);
    setThreads(6);
    const auto parallel_run = analysis::scanAllGroups(params);

    ASSERT_EQ(serial.size(), parallel_run.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].group, parallel_run[i].group);
        EXPECT_EQ(serial[i].probed.frac, parallel_run[i].probed.frac);
        EXPECT_EQ(serial[i].probed.threeRow,
                  parallel_run[i].probed.threeRow);
        EXPECT_EQ(serial[i].probed.fourRow,
                  parallel_run[i].probed.fourRow);
    }
}
