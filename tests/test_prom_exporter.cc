/**
 * @file
 * Prometheus exporter tests: label escaping, name sanitization, and
 * a golden rendering of a hand-built MetricsSnapshot covering the
 * counter/gauge/histogram forms, shard-label folding, cumulative
 * buckets and the +Inf invariant. renderProm is a pure function of
 * the snapshot, so no registry state is involved.
 */

#include <gtest/gtest.h>

#include "telemetry/prom.hh"

using namespace fracdram::telemetry;

namespace
{

HistogramSnapshot
makeHist(std::initializer_list<std::pair<std::size_t, std::uint64_t>>
             filled,
         std::uint64_t sum, std::uint64_t min, std::uint64_t max)
{
    HistogramSnapshot h;
    h.buckets.assign(65, 0);
    for (const auto &[k, n] : filled) {
        h.buckets[k] = n;
        h.count += n;
    }
    h.sum = sum;
    h.min = min;
    h.max = max;
    return h;
}

} // namespace

TEST(PromExporter, EscapesHelpText)
{
    EXPECT_EQ(promEscape("plain"), "plain");
    EXPECT_EQ(promEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(promEscape("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(promEscape("line\nbreak"), "line\\nbreak");
}

TEST(PromExporter, SanitizesMetricNames)
{
    EXPECT_EQ(promSanitizeName("service.request_ns"),
              "service_request_ns");
    EXPECT_EQ(promSanitizeName("weird-name+x"), "weird_name_x");
    EXPECT_EQ(promSanitizeName("3rd"), "_3rd");
    EXPECT_EQ(promSanitizeName("ok:colon_9"), "ok:colon_9");
}

TEST(PromExporter, GoldenRendering)
{
    MetricsSnapshot snap;
    snap.counters["service.jobs"] = 42;
    snap.counters["service.shard0.busy"] = 7;
    snap.gauges["service.shard3.queue_depth"] = 9;
    snap.histograms["service.request_ns"] =
        makeHist({{1, 1}, {3, 2}}, 9, 1, 6);

    const std::string expected =
        "# HELP fracdram_service_jobs_total FracDRAM metric "
        "'service.jobs'\n"
        "# TYPE fracdram_service_jobs_total counter\n"
        "fracdram_service_jobs_total 42\n"
        "# HELP fracdram_service_shard_busy_total FracDRAM metric "
        "'service.shard.busy'\n"
        "# TYPE fracdram_service_shard_busy_total counter\n"
        "fracdram_service_shard_busy_total{shard=\"0\"} 7\n"
        "# HELP fracdram_service_shard_queue_depth FracDRAM metric "
        "'service.shard.queue_depth'\n"
        "# TYPE fracdram_service_shard_queue_depth gauge\n"
        "fracdram_service_shard_queue_depth{shard=\"3\"} 9\n"
        "# HELP fracdram_service_request_ns FracDRAM metric "
        "'service.request_ns'\n"
        "# TYPE fracdram_service_request_ns histogram\n"
        "fracdram_service_request_ns_bucket{le=\"0\"} 0\n"
        "fracdram_service_request_ns_bucket{le=\"1\"} 1\n"
        "fracdram_service_request_ns_bucket{le=\"3\"} 1\n"
        "fracdram_service_request_ns_bucket{le=\"7\"} 3\n"
        "fracdram_service_request_ns_bucket{le=\"+Inf\"} 3\n"
        "fracdram_service_request_ns_sum 9\n"
        "fracdram_service_request_ns_count 3\n";
    EXPECT_EQ(renderProm(snap), expected);
}

TEST(PromExporter, ShardLabelJoinsHistogramLeLabel)
{
    MetricsSnapshot snap;
    snap.histograms["service.shard1.batch_jobs"] =
        makeHist({{2, 4}}, 12, 3, 3);
    const std::string out = renderProm(snap);
    EXPECT_NE(out.find("fracdram_service_shard_batch_jobs_bucket"
                       "{shard=\"1\",le=\"3\"} 4\n"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("fracdram_service_shard_batch_jobs_sum"
                       "{shard=\"1\"} 12\n"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("fracdram_service_shard_batch_jobs_count"
                       "{shard=\"1\"} 4\n"),
              std::string::npos)
        << out;
    // Both shards of one family share a single header block.
    snap.histograms["service.shard0.batch_jobs"] =
        makeHist({{1, 1}}, 1, 1, 1);
    const std::string two = renderProm(snap);
    std::size_t first =
        two.find("# TYPE fracdram_service_shard_batch_jobs");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(
        two.find("# TYPE fracdram_service_shard_batch_jobs",
                 first + 1),
        std::string::npos);
}

TEST(PromExporter, ReactorLabelFoldsLikeShard)
{
    MetricsSnapshot snap;
    snap.gauges["service.reactor0.conns"] = 5;
    snap.gauges["service.reactor1.conns"] = 3;
    const std::string out = renderProm(snap);
    EXPECT_NE(out.find("fracdram_service_reactor_conns"
                       "{reactor=\"0\"} 5\n"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("fracdram_service_reactor_conns"
                       "{reactor=\"1\"} 3\n"),
              std::string::npos)
        << out;
    // One family, one header block, two labelled series.
    const std::size_t first =
        out.find("# TYPE fracdram_service_reactor_conns");
    ASSERT_NE(first, std::string::npos);
    EXPECT_EQ(out.find("# TYPE fracdram_service_reactor_conns",
                       first + 1),
              std::string::npos);
    // A non-numeric suffix must NOT be folded into a label.
    snap.gauges["service.reactorx.conns"] = 1;
    EXPECT_NE(renderProm(snap).find("fracdram_service_reactorx_conns"),
              std::string::npos);
}

TEST(PromExporter, TopBucketAndInfInvariant)
{
    MetricsSnapshot snap;
    snap.histograms["wide"] =
        makeHist({{64, 2}}, 0, UINT64_MAX, UINT64_MAX);
    const std::string out = renderProm(snap);
    // The k=64 bucket's upper bound is 2^64-1; +Inf always equals
    // the total count.
    EXPECT_NE(out.find("fracdram_wide_bucket"
                       "{le=\"18446744073709551615\"} 2\n"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("fracdram_wide_bucket{le=\"+Inf\"} 2\n"),
              std::string::npos)
        << out;
}

TEST(PromExporter, CustomPrefixAndEmptySnapshot)
{
    MetricsSnapshot empty;
    EXPECT_EQ(renderProm(empty), "");
    MetricsSnapshot snap;
    snap.counters["x"] = 1;
    EXPECT_EQ(renderProm(snap, "acme"),
              "# HELP acme_x_total FracDRAM metric 'x'\n"
              "# TYPE acme_x_total counter\n"
              "acme_x_total 1\n");
}

TEST(PromExporter, ProcessGaugeGolden)
{
    // The process.* family sampled by telemetry/procstats.cc must
    // render as plain (unlabelled) gauges under the standard names.
    MetricsSnapshot snap;
    snap.gauges["process.cpu_sys_ms"] = 250;
    snap.gauges["process.cpu_user_ms"] = 1250;
    snap.gauges["process.open_fds"] = 17;
    snap.gauges["process.peak_rss_bytes"] = 134217728;
    snap.gauges["process.rss_bytes"] = 104857600;
    snap.gauges["process.uptime_ms"] = 60000;

    const std::string expected =
        "# HELP fracdram_process_cpu_sys_ms FracDRAM metric "
        "'process.cpu_sys_ms'\n"
        "# TYPE fracdram_process_cpu_sys_ms gauge\n"
        "fracdram_process_cpu_sys_ms 250\n"
        "# HELP fracdram_process_cpu_user_ms FracDRAM metric "
        "'process.cpu_user_ms'\n"
        "# TYPE fracdram_process_cpu_user_ms gauge\n"
        "fracdram_process_cpu_user_ms 1250\n"
        "# HELP fracdram_process_open_fds FracDRAM metric "
        "'process.open_fds'\n"
        "# TYPE fracdram_process_open_fds gauge\n"
        "fracdram_process_open_fds 17\n"
        "# HELP fracdram_process_peak_rss_bytes FracDRAM metric "
        "'process.peak_rss_bytes'\n"
        "# TYPE fracdram_process_peak_rss_bytes gauge\n"
        "fracdram_process_peak_rss_bytes 134217728\n"
        "# HELP fracdram_process_rss_bytes FracDRAM metric "
        "'process.rss_bytes'\n"
        "# TYPE fracdram_process_rss_bytes gauge\n"
        "fracdram_process_rss_bytes 104857600\n"
        "# HELP fracdram_process_uptime_ms FracDRAM metric "
        "'process.uptime_ms'\n"
        "# TYPE fracdram_process_uptime_ms gauge\n"
        "fracdram_process_uptime_ms 60000\n";
    EXPECT_EQ(renderProm(snap), expected);
}
