/**
 * @file
 * Property-based tests (parameterized sweeps) over the simulator's
 * invariants:
 *
 *  - charge sharing never leaves the rail envelope
 *  - the decoder's opened sets are power-of-two sized, sub-array
 *    local, and always contain R2
 *  - Frac walks voltages monotonically toward V_dd/2 on every
 *    Frac-capable group
 *  - voltage-domain round trips hold for every row polarity
 *  - leakage is monotone in time and temperature
 */

#include <gtest/gtest.h>

#include <bit>

#include "common/rng.hh"
#include "common/stats.hh"
#include "core/frac_op.hh"
#include "core/multi_row.hh"
#include "sim/chip.hh"
#include "sim/row_decoder.hh"
#include "softmc/controller.hh"

using namespace fracdram;
using namespace fracdram::sim;
using namespace fracdram::softmc;

namespace
{

DramParams
tinyParams()
{
    DramParams p;
    p.numBanks = 1;
    p.subarraysPerBank = 2;
    p.rowsPerSubarray = 32;
    p.colsPerRow = 128;
    return p;
}

std::string
paramGroupName(const ::testing::TestParamInfo<DramGroup> &info)
{
    return groupName(info.param);
}

} // namespace

// ---------------------------------------------------------------
// Decoder properties, swept over all multi-row-capable groups and
// many row pairs.
// ---------------------------------------------------------------

class DecoderProperty : public ::testing::TestWithParam<DramGroup>
{
};

TEST_P(DecoderProperty, OpenedSetInvariants)
{
    const auto &profile = vendorProfile(GetParam());
    constexpr std::uint32_t rows_per_subarray = 64;
    for (RowAddr r1 = 0; r1 < 24; ++r1) {
        for (RowAddr r2 = 0; r2 < 24; ++r2) {
            const auto opened =
                glitchOpenedRows(profile, r1, r2, rows_per_subarray);
            // Non-empty; power-of-two sized except for group B's
            // three-row sets (the dropped OR-term row).
            ASSERT_FALSE(opened.empty());
            const bool three_ok =
                profile.dropsOrRowForAdjacentPairs &&
                opened.size() == 3;
            EXPECT_TRUE(std::has_single_bit(opened.size()) || three_ok)
                << r1 << "," << r2;
            // R2 always opens; everything stays in R2's sub-array.
            bool has_r2 = false;
            std::set<RowAddr> unique;
            for (const auto &o : opened) {
                has_r2 |= o.row == r2;
                unique.insert(o.row);
                EXPECT_EQ(o.row / rows_per_subarray,
                          r2 / rows_per_subarray);
            }
            EXPECT_TRUE(has_r2) << r1 << "," << r2;
            EXPECT_EQ(unique.size(), opened.size());
            // At most one FirstAct / SecondAct role.
            int first = 0, second = 0;
            for (const auto &o : opened) {
                first += o.role == RowRole::FirstAct;
                second += o.role == RowRole::SecondAct;
            }
            EXPECT_LE(first, 1);
            EXPECT_LE(second, 1);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllGroups, DecoderProperty,
                         ::testing::Values(DramGroup::A, DramGroup::B,
                                           DramGroup::C, DramGroup::D,
                                           DramGroup::E),
                         paramGroupName);

// ---------------------------------------------------------------
// Frac monotonicity on every Frac-capable group.
// ---------------------------------------------------------------

class FracProperty : public ::testing::TestWithParam<DramGroup>
{
};

TEST_P(FracProperty, VoltageWalksTowardHalfVdd)
{
    DramChip chip(GetParam(), 3, tinyParams());
    MemoryController mc(chip, false);
    mc.fillRowVoltage(0, 4, true);
    double prev_gap = 0.75;
    for (int n = 1; n <= 4; ++n) {
        core::frac(mc, 0, 4, 1);
        OnlineStats gap;
        for (ColAddr c = 0; c < 128; ++c)
            gap.add(std::abs(chip.bank(0).cellVoltage(4, c) - 0.75));
        EXPECT_LT(gap.mean(), prev_gap) << "frac " << n;
        prev_gap = gap.mean();
    }
    EXPECT_LT(prev_gap, 0.12);
}

TEST_P(FracProperty, VoltageEnvelopeRespected)
{
    // Cells never exceed the rail envelope, regardless of the
    // operation mix.
    DramChip chip(GetParam(), 4, tinyParams());
    MemoryController mc(chip, false);
    Rng rng(17);
    for (int step = 0; step < 30; ++step) {
        const RowAddr row = static_cast<RowAddr>(rng.below(8));
        switch (rng.below(3)) {
          case 0:
            mc.fillRowVoltage(0, row, rng.chance(0.5));
            break;
          case 1:
            core::frac(mc, 0, row, 1 + static_cast<int>(rng.below(3)));
            break;
          default:
            mc.readRow(0, row);
            break;
        }
        for (ColAddr c = 0; c < 16; ++c) {
            const double v = chip.bank(0).cellVoltage(row, c);
            EXPECT_GE(v, -0.01);
            EXPECT_LE(v, 1.51);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(FracCapable, FracProperty,
                         ::testing::Values(DramGroup::A, DramGroup::B,
                                           DramGroup::C, DramGroup::D,
                                           DramGroup::E, DramGroup::F,
                                           DramGroup::G, DramGroup::H,
                                           DramGroup::I),
                         paramGroupName);

// ---------------------------------------------------------------
// Voltage-domain round trips for both polarities, all groups.
// ---------------------------------------------------------------

class PolarityProperty : public ::testing::TestWithParam<DramGroup>
{
};

TEST_P(PolarityProperty, LogicRoundTripBothPolarities)
{
    DramChip chip(GetParam(), 5, tinyParams());
    MemoryController mc(chip, false);
    Rng rng(23);
    for (const RowAddr row : {6u, 7u}) { // true row and anti row
        BitVector data(128);
        for (std::size_t i = 0; i < 128; ++i)
            data.set(i, rng.chance(0.5));
        mc.writeRow(0, row, data);
        EXPECT_TRUE(mc.readRow(0, row) == data) << "row " << row;
        // Voltage domain: logic and physical agree only on true rows.
        const auto v = mc.readRowVoltage(0, row);
        mc.writeRow(0, row, data);
        if (chip.rowIsAnti(0, row))
            EXPECT_EQ(v.hammingDistance(data), data.size());
        else
            EXPECT_TRUE(v == data);
    }
}

INSTANTIATE_TEST_SUITE_P(AllGroups, PolarityProperty,
                         ::testing::Values(DramGroup::B, DramGroup::E,
                                           DramGroup::J),
                         paramGroupName);

// ---------------------------------------------------------------
// Leakage monotonicity.
// ---------------------------------------------------------------

TEST(LeakageProperty, MonotoneInTime)
{
    DramChip chip(DramGroup::B, 6, tinyParams());
    MemoryController mc(chip, false);
    mc.fillRowVoltage(0, 4, true);
    double prev = 1.6;
    for (int step = 0; step < 6; ++step) {
        OnlineStats s;
        for (ColAddr c = 0; c < 128; ++c)
            s.add(chip.bank(0).cellVoltage(4, c));
        EXPECT_LE(s.mean(), prev + 1e-9);
        prev = s.mean();
        mc.waitSeconds(3600.0 * 500.0);
    }
}

TEST(LeakageProperty, MonotoneInTemperature)
{
    double prev_mean = 2.0;
    for (const double temp : {20.0, 45.0, 70.0}) {
        DramChip chip(DramGroup::B, 7, tinyParams());
        MemoryController mc(chip, false);
        chip.env().temperatureC = temp;
        mc.fillRowVoltage(0, 4, true);
        mc.waitSeconds(3600.0 * 500.0);
        OnlineStats s;
        for (ColAddr c = 0; c < 128; ++c)
            s.add(chip.bank(0).cellVoltage(4, c));
        EXPECT_LT(s.mean(), prev_mean) << temp;
        prev_mean = s.mean();
    }
}

// ---------------------------------------------------------------
// Charge sharing stays within the operand envelope.
// ---------------------------------------------------------------

TEST(ChargeShareProperty, SharedVoltageWithinEnvelope)
{
    DramChip chip(DramGroup::B, 8, tinyParams());
    MemoryController mc(chip, false);
    Rng rng(31);
    for (int trial = 0; trial < 10; ++trial) {
        // Random rail pattern in the four rows, then Half-m.
        for (const RowAddr r : {0u, 1u, 8u, 9u}) {
            BitVector bits(128);
            for (std::size_t i = 0; i < 128; ++i)
                bits.set(i, rng.chance(0.5));
            mc.writeRowVoltage(0, r, bits);
        }
        core::multiRowActivateInterrupted(mc, 0, 8, 1);
        for (const RowAddr r : {0u, 1u, 8u, 9u}) {
            for (ColAddr c = 0; c < 128; ++c) {
                const double v = chip.bank(0).cellVoltage(r, c);
                EXPECT_GE(v, -0.05);
                EXPECT_LE(v, 1.55);
            }
        }
    }
}

// ---------------------------------------------------------------
// Determinism: identical serial numbers replay identical behaviour.
// ---------------------------------------------------------------

TEST(DeterminismProperty, SameSerialSameBehaviour)
{
    auto run = [] {
        DramChip chip(DramGroup::B, 77, tinyParams());
        MemoryController mc(chip, false);
        mc.fillRowVoltage(0, 4, true);
        core::frac(mc, 0, 4, 10);
        return mc.readRowVoltage(0, 4);
    };
    EXPECT_TRUE(run() == run());
}

// ---------------------------------------------------------------
// PUF Hamming weight tracks each group's fitted sense-amp bias.
// ---------------------------------------------------------------

class HammingWeightProperty : public ::testing::TestWithParam<DramGroup>
{
};

TEST_P(HammingWeightProperty, MatchesProfileBias)
{
    DramParams params = tinyParams();
    params.colsPerRow = 4096;
    DramChip chip(GetParam(), 21, params);
    MemoryController mc(chip, false);
    // Ten Fracs from all ones, read out: HW ~ Phi(-mean/sigma_eff).
    mc.fillRowVoltage(0, 4, true);
    core::frac(mc, 0, 4, 10);
    const double hw = mc.readRowVoltage(0, 4).hammingWeight();

    const auto &p = chip.profile();
    const double cell_part =
        p.cellFracOffsetSigma / (params.bitlineCapRatio + 1.0);
    const double eff = std::sqrt(p.saOffsetSigma * p.saOffsetSigma +
                                 cell_part * cell_part);
    const double expected = normalCdf(-p.saOffsetMean / eff);
    EXPECT_NEAR(hw, expected, 0.08) << groupName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(FracCapable, HammingWeightProperty,
                         ::testing::Values(DramGroup::A, DramGroup::B,
                                           DramGroup::C, DramGroup::E,
                                           DramGroup::G, DramGroup::H,
                                           DramGroup::I, DramGroup::M),
                         paramGroupName);
