/**
 * @file
 * Tests of the Frac-based PUF.
 */

#include <gtest/gtest.h>

#include "puf/hamming.hh"
#include "puf/puf.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

using namespace fracdram;
using namespace fracdram::sim;
using namespace fracdram::softmc;
using namespace fracdram::puf;

namespace
{

DramParams
tinyParams()
{
    DramParams p;
    p.numBanks = 4;
    p.subarraysPerBank = 1;
    p.rowsPerSubarray = 16;
    p.colsPerRow = 1024;
    return p;
}

} // namespace

class PufTest : public ::testing::Test
{
  protected:
    DramChip chip{DramGroup::E, 1, tinyParams()};
    MemoryController mc{chip, false};
    FracPuf puf{mc, 10};
};

TEST_F(PufTest, ChallengesSpreadOverBanks)
{
    const auto cs = puf.makeChallenges(8);
    ASSERT_EQ(cs.size(), 8u);
    std::set<BankAddr> banks;
    for (const auto &c : cs)
        banks.insert(c.bank);
    EXPECT_EQ(banks.size(), 4u);
    // All distinct.
    for (std::size_t i = 0; i < cs.size(); ++i)
        for (std::size_t j = i + 1; j < cs.size(); ++j)
            EXPECT_FALSE(cs[i] == cs[j]);
}

TEST_F(PufTest, TooManyChallengesDies)
{
    EXPECT_DEATH(puf.makeChallenges(4 * 16 + 1), "more challenges");
}

TEST_F(PufTest, ResponseLengthMatchesRow)
{
    const auto r = puf.evaluate({0, 3});
    EXPECT_EQ(r.size(), 1024u);
}

TEST_F(PufTest, SameChallengeNearIdenticalResponse)
{
    const Challenge c{1, 5};
    const auto r1 = puf.evaluate(c);
    const auto r2 = puf.evaluate(c);
    EXPECT_LT(normalizedHammingDistance(r1, r2), 0.08);
}

TEST_F(PufTest, DifferentChallengesIndependentResponses)
{
    const auto r1 = puf.evaluate({0, 3});
    const auto r2 = puf.evaluate({0, 7});
    const double hd = normalizedHammingDistance(r1, r2);
    EXPECT_GT(hd, 0.3);
}

TEST_F(PufTest, DifferentModulesIndependentResponses)
{
    DramChip other(DramGroup::E, 99, tinyParams());
    MemoryController mc2(other, false);
    FracPuf puf2(mc2, 10);
    const Challenge c{0, 3};
    const double hd =
        normalizedHammingDistance(puf.evaluate(c), puf2.evaluate(c));
    EXPECT_GT(hd, 0.3);
}

TEST_F(PufTest, EvaluationCycleModel)
{
    // 88 preparation cycles (copy + 10 Fracs) + burst readout.
    EXPECT_EQ(puf.preparationCycles(), 88u);
    EXPECT_EQ(puf.evaluationCycles(),
              88u + mc.readRowCycles());
}

TEST_F(PufTest, DiscardAfterEvaluateFreesRows)
{
    puf.setDiscardAfterEvaluate(true);
    puf.evaluate({2, 9});
    EXPECT_FALSE(chip.bank(2).rowAllocated(9));
    puf.setDiscardAfterEvaluate(false);
    puf.evaluate({2, 9});
    EXPECT_TRUE(chip.bank(2).rowAllocated(9));
}

TEST_F(PufTest, FewerFracsWeakerFingerprint)
{
    // With one Frac the residual data dependence is strong: the
    // response is biased toward the all-ones initialization.
    FracPuf weak(mc, 1);
    const auto r = weak.evaluate({0, 2});
    const auto strong = puf.evaluate({0, 2});
    EXPECT_GT(r.hammingWeight(), strong.hammingWeight());
}

TEST(PufValidation, RejectsCheckerGroups)
{
    DramChip chip(DramGroup::J, 1, tinyParams());
    MemoryController mc(chip, false);
    EXPECT_DEATH(FracPuf(mc, 10), "cannot Frac");
}

TEST(PufValidation, RejectsZeroFracs)
{
    DramChip chip(DramGroup::E, 1, tinyParams());
    MemoryController mc(chip, false);
    EXPECT_DEATH(FracPuf(mc, 0), "at least one");
}

TEST(PufHammingWeight, GroupBiasVisible)
{
    // Group A's sense amps are biased: far fewer ones than group I.
    DramParams p = tinyParams();
    DramChip chip_a(DramGroup::A, 1, p);
    MemoryController mc_a(chip_a, false);
    FracPuf puf_a(mc_a, 10);
    DramChip chip_i(DramGroup::I, 1, p);
    MemoryController mc_i(chip_i, false);
    FracPuf puf_i(mc_i, 10);
    const double hw_a = puf_a.evaluate({0, 3}).hammingWeight();
    const double hw_i = puf_i.evaluate({0, 3}).hammingWeight();
    EXPECT_LT(hw_a, 0.35);
    EXPECT_GT(hw_i, 0.4);
    EXPECT_LT(hw_i, 0.6);
}

TEST_F(PufTest, InDramInitMatchesBusInit)
{
    // The 88-cycle preparation path (in-DRAM copy from a reserved
    // all-ones row) must produce the same fingerprint as a bus write.
    const Challenge c{0, 3};
    const auto bus = puf.evaluate(c);
    puf.setUseInDramInit(true);
    const auto indram = puf.evaluate(c);
    EXPECT_LT(normalizedHammingDistance(bus, indram), 0.08);
    puf.setUseInDramInit(false);
}

TEST_F(PufTest, InDramInitRejectsReservedRow)
{
    puf.setUseInDramInit(true);
    const RowAddr reserved = chip.dramParams().rowsPerBank() - 1;
    EXPECT_DEATH(puf.evaluate({0, reserved}), "reserved");
}

TEST_F(PufTest, ChallengesAvoidReservedRow)
{
    const RowAddr reserved = chip.dramParams().rowsPerBank() - 1;
    for (const auto &c : puf.makeChallenges(40))
        EXPECT_NE(c.row, reserved);
}
