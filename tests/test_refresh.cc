/**
 * @file
 * Tests of the refresh manager (paper Sec. III-C discipline).
 */

#include <gtest/gtest.h>

#include "core/frac_op.hh"
#include "core/refresh.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

using namespace fracdram;
using namespace fracdram::sim;
using namespace fracdram::softmc;
using namespace fracdram::core;

namespace
{

DramParams
tinyParams()
{
    DramParams p;
    p.numBanks = 1;
    p.subarraysPerBank = 1;
    p.rowsPerSubarray = 16;
    p.colsPerRow = 128;
    return p;
}

} // namespace

class RefreshTest : public ::testing::Test
{
  protected:
    DramChip chip{DramGroup::B, 1, tinyParams()};
    MemoryController mc{chip, false};
    RefreshManager mgr{mc};
};

TEST_F(RefreshTest, NotDueInitially)
{
    EXPECT_FALSE(mgr.due());
    EXPECT_FALSE(mgr.tick());
    EXPECT_DOUBLE_EQ(mgr.interval(), 0.064);
}

TEST_F(RefreshTest, DueAfterInterval)
{
    mc.waitSeconds(0.065);
    EXPECT_TRUE(mgr.due());
    EXPECT_TRUE(mgr.tick());
    // Refresh happened; no longer due.
    EXPECT_FALSE(mgr.due());
    EXPECT_LT(mgr.sinceLast(), 0.001);
}

TEST_F(RefreshTest, SuspendBlocksTick)
{
    mgr.suspend();
    mc.waitSeconds(0.1);
    EXPECT_TRUE(mgr.due());
    EXPECT_FALSE(mgr.tick());
    EXPECT_TRUE(mgr.overdue());
    mgr.resume(); // issues the overdue refresh immediately
    EXPECT_FALSE(mgr.due());
    EXPECT_FALSE(mgr.overdue());
}

TEST_F(RefreshTest, NestedSuspendBalanced)
{
    mgr.suspend();
    mgr.suspend();
    mgr.resume();
    EXPECT_TRUE(mgr.suspended());
    mgr.resume();
    EXPECT_FALSE(mgr.suspended());
    EXPECT_DEATH(mgr.resume(), "matching suspend");
}

TEST_F(RefreshTest, RefreshPreservesLogicalData)
{
    BitVector data(128);
    for (std::size_t i = 0; i < 128; ++i)
        data.set(i, i % 3 == 0);
    mc.writeRow(0, 3, data);
    mc.waitSeconds(0.065);
    mgr.tick();
    EXPECT_TRUE(mc.readRow(0, 3) == data);
}

TEST_F(RefreshTest, RefreshDestroysFractionalValues)
{
    mc.fillRowVoltage(0, 4, true);
    frac(mc, 0, 4, 5);
    // The fractional row reads as a mixed pattern before refresh...
    const double hw_before = chip.bank(0).cellVoltage(4, 0);
    EXPECT_LT(hw_before, 1.2);
    mgr.refreshNow();
    // ...and as solid rails after (the paper's reason to suspend).
    for (ColAddr c = 0; c < 32; ++c) {
        const double v = chip.bank(0).cellVoltage(4, c);
        EXPECT_TRUE(v < 0.01 || v > 1.49) << c;
    }
}

TEST_F(RefreshTest, TypicalFracApplicationFitsInWindow)
{
    // The paper's point: 64 ms is plenty for a Frac application.
    // A full PUF evaluation costs ~1.5 us of bus time.
    mgr.suspend();
    mc.fillRowVoltage(0, 4, true);
    frac(mc, 0, 4, 10);
    mc.readRowVoltage(0, 4);
    mgr.resume();
    EXPECT_LT(mgr.sinceLast(), 0.064); // never became overdue
}

TEST(RefreshValidation, BadInterval)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    EXPECT_DEATH(RefreshManager(mc, 0.0), "positive");
}
