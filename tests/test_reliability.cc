/**
 * @file
 * Tests of compute-lane reliability profiling and the host-side
 * compact/expand helpers.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compute/reliability.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

using namespace fracdram;
using namespace fracdram::sim;
using namespace fracdram::softmc;
using namespace fracdram::compute;

namespace
{

DramParams
engineParams()
{
    DramParams p;
    p.numBanks = 1;
    p.subarraysPerBank = 1;
    p.rowsPerSubarray = 128;
    p.colsPerRow = 256;
    return p;
}

} // namespace

TEST(LaneProfiling, MostLanesReliable)
{
    DramChip chip(DramGroup::B, 1, engineParams());
    MemoryController mc(chip, false);
    BitwiseEngine engine(mc);
    const auto profile = profileLanes(engine, 8);
    ASSERT_EQ(profile.successRate.size(), engine.lanes());
    const double frac =
        static_cast<double>(profile.reliableCount(1.0)) /
        static_cast<double>(engine.lanes());
    EXPECT_GT(frac, 0.7);
    EXPECT_LT(frac, 1.0 + 1e-9);
    for (const double r : profile.successRate) {
        EXPECT_GE(r, 0.0);
        EXPECT_LE(r, 1.0);
    }
}

TEST(LaneProfiling, ThresholdMonotone)
{
    DramChip chip(DramGroup::C, 1, engineParams());
    MemoryController mc(chip, false);
    BitwiseEngine engine(mc);
    const auto profile = profileLanes(engine, 6);
    EXPECT_GE(profile.reliableCount(0.8), profile.reliableCount(1.0));
    EXPECT_EQ(profile.reliableCount(0.0), engine.lanes());
}

TEST(LaneProfiling, ProfilingReleasesItsRows)
{
    DramChip chip(DramGroup::B, 2, engineParams());
    MemoryController mc(chip, false);
    BitwiseEngine engine(mc);
    const std::size_t before = engine.freeRows();
    profileLanes(engine, 2);
    EXPECT_EQ(engine.freeRows(), before);
}

TEST(CompactExpand, RoundTrip)
{
    BitVector mask(16, false);
    for (const std::size_t lane : {1u, 4u, 5u, 9u, 14u})
        mask.set(lane, true);
    const auto data = BitVector::fromString("10110");
    const auto lanes = compactToLanes(data, mask);
    EXPECT_EQ(lanes.size(), 16u);
    EXPECT_TRUE(lanes.get(1));
    EXPECT_FALSE(lanes.get(4));
    EXPECT_TRUE(lanes.get(5));
    EXPECT_TRUE(lanes.get(9));
    EXPECT_FALSE(lanes.get(14));
    // Unmasked lanes carry zero.
    EXPECT_FALSE(lanes.get(0));
    const auto back = expandFromLanes(lanes, mask, 5);
    EXPECT_TRUE(back == data);
}

TEST(CompactExpand, CapacityChecks)
{
    BitVector mask(8, false);
    mask.set(0, true);
    EXPECT_DEATH(compactToLanes(BitVector(2, true), mask), "exceeds");
    EXPECT_DEATH(expandFromLanes(BitVector(8), mask, 2),
                 "fewer lanes");
    EXPECT_DEATH(expandFromLanes(BitVector(4), mask, 1),
                 "sizes differ");
}

TEST(CompactExpand, EndToEndWithEngine)
{
    // Full flow: profile, place payload on reliable lanes, compute,
    // read back only the reliable lanes - zero errors.
    DramChip chip(DramGroup::B, 3, engineParams());
    MemoryController mc(chip, false);
    BitwiseEngine engine(mc);
    const auto mask = profileLanes(engine, 10).reliableLanes(1.0);
    const std::size_t payload = std::min<std::size_t>(
        64, mask.popcount());

    Rng rng(9);
    BitVector a_data(payload), b_data(payload);
    for (std::size_t i = 0; i < payload; ++i) {
        a_data.set(i, rng.chance(0.5));
        b_data.set(i, rng.chance(0.5));
    }
    const Value a = engine.alloc(), b = engine.alloc();
    engine.write(a, compactToLanes(a_data, mask));
    engine.write(b, compactToLanes(b_data, mask));
    const Value r = engine.opAnd(a, b);
    const auto result =
        expandFromLanes(engine.read(r), mask, payload);
    std::size_t errors = 0;
    for (std::size_t i = 0; i < payload; ++i) {
        errors +=
            result.get(i) != (a_data.get(i) && b_data.get(i));
    }
    // Reliable lanes were selected for exactly this stability.
    EXPECT_LE(errors, payload / 20);
}
