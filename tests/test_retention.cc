/**
 * @file
 * Tests of the retention profiler (the destructive voltage probe).
 */

#include <gtest/gtest.h>

#include "core/frac_op.hh"
#include "core/retention.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

using namespace fracdram;
using namespace fracdram::sim;
using namespace fracdram::softmc;
using namespace fracdram::core;

namespace
{

DramParams
tinyParams()
{
    DramParams p;
    p.numBanks = 1;
    p.subarraysPerBank = 1;
    p.rowsPerSubarray = 16;
    p.colsPerRow = 512;
    return p;
}

} // namespace

TEST(RetentionBuckets, PaperRanges)
{
    EXPECT_EQ(RetentionBuckets::numBuckets(), 6u);
    EXPECT_EQ(RetentionBuckets::label(0), "0");
    EXPECT_EQ(RetentionBuckets::label(1), "0-10min");
    EXPECT_EQ(RetentionBuckets::label(5), ">12h");
    const auto &probes = RetentionBuckets::probeTimes();
    ASSERT_EQ(probes.size(), 5u);
    EXPECT_DOUBLE_EQ(probes.back(), 12.0 * 3600.0);
    EXPECT_DEATH(RetentionBuckets::label(6), "bucket");
}

TEST(RetentionProfiler, FullCellsMostlyTopBucket)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    RetentionProfiler profiler(mc, 0, 4);
    const auto buckets = profiler.profile(
        [&] { mc.fillRowVoltage(0, 4, true); });
    std::size_t top = 0;
    for (const auto b : buckets)
        top += b == 5;
    EXPECT_GT(static_cast<double>(top) /
                  static_cast<double>(buckets.size()),
              0.8);
}

TEST(RetentionProfiler, FracShortensRetention)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    RetentionProfiler profiler(mc, 0, 4);
    const auto base = profiler.profile(
        [&] { mc.fillRowVoltage(0, 4, true); });
    const auto frac5 = profiler.profile([&] {
        mc.fillRowVoltage(0, 4, true);
        frac(mc, 0, 4, 5);
    });
    double base_mean = 0.0, frac_mean = 0.0;
    for (std::size_t c = 0; c < base.size(); ++c) {
        base_mean += static_cast<double>(base[c]);
        frac_mean += static_cast<double>(frac5[c]);
    }
    EXPECT_LT(frac_mean, base_mean * 0.8);
}

TEST(RetentionProfiler, MoreFracsNeverLengthenRetentionMuch)
{
    // Per-cell monotonicity, allowing the odd VRT cell.
    DramChip chip(DramGroup::B, 2, tinyParams());
    MemoryController mc(chip, false);
    RetentionProfiler profiler(mc, 0, 4);
    std::vector<std::size_t> prev;
    int violations = 0;
    for (const int n : {0, 2, 4}) {
        const auto buckets = profiler.profile([&] {
            mc.fillRowVoltage(0, 4, true);
            if (n > 0)
                frac(mc, 0, 4, n);
        });
        if (!prev.empty()) {
            for (std::size_t c = 0; c < buckets.size(); ++c)
                violations += buckets[c] > prev[c];
        }
        prev = buckets;
    }
    EXPECT_LT(violations, 30); // < ~3% of 2x512 comparisons
}

TEST(RetentionProfiler, ZeroCellsDieImmediately)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    RetentionProfiler profiler(mc, 0, 4);
    const auto buckets = profiler.profile(
        [&] { mc.fillRowVoltage(0, 4, false); });
    for (const auto b : buckets)
        EXPECT_EQ(b, 0u);
}

TEST(RetentionProfiler, CustomProbeTimes)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    RetentionProfiler profiler(mc, 0, 4);
    const auto buckets = profiler.profile(
        [&] { mc.fillRowVoltage(0, 4, true); }, {1.0, 10.0});
    for (const auto b : buckets)
        EXPECT_LE(b, 2u);
}

TEST(RetentionProfiler, ProbeTimesMustIncrease)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    RetentionProfiler profiler(mc, 0, 4);
    const auto prep = [&] { mc.fillRowVoltage(0, 4, true); };
    EXPECT_DEATH(profiler.profile(prep, {10.0, 5.0}), "increasing");
    EXPECT_DEATH(profiler.profile(prep, {}), "probe");
}

TEST(RetentionProfiler, HotterMeansShorterRetention)
{
    DramChip chip(DramGroup::B, 3, tinyParams());
    MemoryController mc(chip, false);
    RetentionProfiler profiler(mc, 0, 4);
    const auto prep = [&] { mc.fillRowVoltage(0, 4, true); };

    chip.env().temperatureC = 20.0;
    const auto cold = profiler.profile(prep);
    chip.env().temperatureC = 80.0;
    const auto hot = profiler.profile(prep);
    double cold_mean = 0.0, hot_mean = 0.0;
    for (std::size_t c = 0; c < cold.size(); ++c) {
        cold_mean += static_cast<double>(cold[c]);
        hot_mean += static_cast<double>(hot[c]);
    }
    EXPECT_LT(hot_mean, cold_mean);
}
