/**
 * @file
 * Tests of the retention-failure PUF baseline.
 */

#include <gtest/gtest.h>

#include "puf/hamming.hh"
#include "puf/retention_puf.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

using namespace fracdram;
using namespace fracdram::sim;
using namespace fracdram::softmc;
using namespace fracdram::puf;

namespace
{

DramParams
wideParams()
{
    DramParams p;
    p.numBanks = 1;
    p.subarraysPerBank = 1;
    p.rowsPerSubarray = 16;
    p.colsPerRow = 16384; // sparse signatures need wide rows
    return p;
}

} // namespace

TEST(RetentionPufTest, SignatureIsSparse)
{
    DramChip chip(DramGroup::B, 1, wideParams());
    MemoryController mc(chip, false);
    RetentionPuf rpuf(mc, 120.0);
    const auto sig = rpuf.evaluate({0, 3});
    // Only the pathological leaky cells decay within the window.
    EXPECT_GT(sig.popcount(), 0u);
    EXPECT_LT(sig.hammingWeight(), 0.01);
}

TEST(RetentionPufTest, SignatureRepeatable)
{
    DramChip chip(DramGroup::B, 1, wideParams());
    MemoryController mc(chip, false);
    RetentionPuf rpuf(mc, 120.0);
    const auto a = rpuf.evaluate({0, 3});
    const auto b = rpuf.evaluate({0, 3});
    // Most decayed cells repeat (same leaky population).
    const auto diff = a.hammingDistance(b);
    EXPECT_LT(diff, a.popcount() / 2 + 2);
}

TEST(RetentionPufTest, SignatureUniquePerModule)
{
    DramChip chip_a(DramGroup::B, 1, wideParams());
    MemoryController mc_a(chip_a, false);
    DramChip chip_b(DramGroup::B, 2, wideParams());
    MemoryController mc_b(chip_b, false);
    RetentionPuf puf_a(mc_a, 120.0), puf_b(mc_b, 120.0);
    const auto a = puf_a.evaluate({0, 3});
    const auto b = puf_b.evaluate({0, 3});
    // Different leaky populations: the signatures barely overlap.
    std::size_t overlap = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        overlap += a.get(i) && b.get(i);
    EXPECT_LT(overlap, std::min(a.popcount(), b.popcount()) / 2 + 1);
}

TEST(RetentionPufTest, TemperatureShiftsSignature)
{
    // The baseline's weakness: heating accelerates leakage, so many
    // more cells decay within the same window.
    DramChip chip(DramGroup::B, 3, wideParams());
    MemoryController mc(chip, false);
    RetentionPuf rpuf(mc, 120.0);
    const auto cold = rpuf.evaluate({0, 3});
    chip.env().temperatureC = 45.0;
    const auto hot = rpuf.evaluate({0, 3});
    EXPECT_GT(hot.popcount(), cold.popcount());
}

TEST(RetentionPufTest, LongerWindowMoreDecay)
{
    DramChip chip(DramGroup::B, 4, wideParams());
    MemoryController mc(chip, false);
    RetentionPuf fast(mc, 30.0), slow(mc, 600.0);
    const auto few = fast.evaluate({0, 3});
    const auto many = slow.evaluate({0, 3});
    EXPECT_GE(many.popcount(), few.popcount());
}

TEST(RetentionPufTest, EvaluationTimeIsTheWindow)
{
    DramChip chip(DramGroup::B, 1, wideParams());
    MemoryController mc(chip, false);
    RetentionPuf rpuf(mc, 77.0);
    EXPECT_DOUBLE_EQ(rpuf.evaluationSeconds(), 77.0);
    EXPECT_DEATH(RetentionPuf(mc, 0.0), "positive");
}
