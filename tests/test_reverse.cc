/**
 * @file
 * Tests of the reverse-engineering tools (paper Sec. VI-C).
 */

#include <gtest/gtest.h>

#include "analysis/reverse.hh"
#include "common/logging.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

using namespace fracdram;
using namespace fracdram::sim;
using namespace fracdram::softmc;
using namespace fracdram::analysis;

namespace
{

DramParams
tinyParams()
{
    DramParams p;
    p.numBanks = 1;
    p.subarraysPerBank = 1;
    p.rowsPerSubarray = 64;
    p.colsPerRow = 256;
    return p;
}

struct Quiet
{
    Quiet() { setVerbose(false); }
} quiet;

} // namespace

TEST(ReverseDecoder, GroupBShowsThreeRowSets)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    const auto model = reverseEngineerDecoder(mc, 16);
    EXPECT_TRUE(model.hasThreeRowSets);
    EXPECT_EQ(model.maxOpenedRows, 16u); // distance-4 pairs in window
    EXPECT_EQ(model.inferredWindowBits, 4);
}

TEST(ReverseDecoder, GroupCIsPowerOfTwoOnly)
{
    DramChip chip(DramGroup::C, 1, tinyParams());
    MemoryController mc(chip, false);
    const auto model = reverseEngineerDecoder(mc, 16);
    EXPECT_FALSE(model.hasThreeRowSets);
    EXPECT_TRUE(model.powerOfTwoOnly);
    EXPECT_GE(model.maxOpenedRows, 4u);
    // Distance-2 pairs open 4 rows (the paper's C/D diagnosis).
    bool any_four = false;
    for (const auto size : model.sizesByDistance.at(2))
        any_four |= size == 4;
    EXPECT_TRUE(any_four);
}

TEST(ReverseDecoder, NonMultiRowGroupStaysSingle)
{
    DramChip chip(DramGroup::E, 1, tinyParams());
    MemoryController mc(chip, false);
    const auto model = reverseEngineerDecoder(mc, 8);
    EXPECT_EQ(model.maxOpenedRows, 1u);
    EXPECT_FALSE(model.hasThreeRowSets);
}

TEST(ReverseSense, FlipPointsMonotoneInThreshold)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    const RowAddr row = 4;
    const auto flips = estimateSenseFlipPoints(mc, 0, row, 12);
    ASSERT_EQ(flips.size(), 256u);

    // Columns with higher effective thresholds (SA offset minus the
    // cell's settling offset seen through the divider) must flip
    // earlier. Check rank agreement on clearly separated pairs.
    const auto &var = chip.variation();
    const double divider =
        chip.dramParams().bitlineCapRatio + 1.0;
    auto threshold = [&](ColAddr c) {
        return var.saOffset(0, c) -
               var.cellFracOffset(0, row, c) / divider;
    };
    std::size_t agree = 0, total = 0;
    for (ColAddr a = 0; a < 256; a += 3) {
        for (ColAddr b = a + 1; b < 256; b += 7) {
            const double ta = threshold(a), tb = threshold(b);
            if (std::abs(ta - tb) < 0.002)
                continue; // too close to rank reliably
            if (flips[a] == flips[b])
                continue;
            ++total;
            agree += (ta > tb) == (flips[a] < flips[b]);
        }
    }
    ASSERT_GT(total, 50u);
    EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total),
              0.8);
}

TEST(ReverseSense, AllRailOnCheckerChips)
{
    // Frac has no effect: nothing flips within the budget.
    DramChip chip(DramGroup::J, 1, tinyParams());
    MemoryController mc(chip, false);
    const auto flips = estimateSenseFlipPoints(mc, 0, 4, 6);
    for (const int f : flips)
        EXPECT_EQ(f, 7);
}
