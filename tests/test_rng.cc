/**
 * @file
 * Unit tests for the deterministic RNG infrastructure.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"

using namespace fracdram;

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMean)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng r(13);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = r.gaussian();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianShifted)
{
    Rng r(17);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += r.gaussian(3.0, 0.5);
    EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, LognormalMedian)
{
    Rng r(19);
    std::vector<double> xs;
    for (int i = 0; i < 50001; ++i)
        xs.push_back(r.lognormal(0.0, 1.0));
    std::nth_element(xs.begin(), xs.begin() + 25000, xs.end());
    EXPECT_NEAR(xs[25000], 1.0, 0.05);
}

TEST(Rng, BetaRangeAndMean)
{
    Rng r(23);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double x = r.beta(6.0, 4.0);
        EXPECT_GT(x, 0.0);
        EXPECT_LT(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 0.6, 0.01); // mean a/(a+b)
}

TEST(Rng, GammaMean)
{
    Rng r(29);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += r.gamma(2.5);
    EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, GammaSmallShape)
{
    Rng r(31);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += r.gamma(0.5);
    EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(Rng, ChanceProbability)
{
    Rng r(37);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BelowBounds)
{
    Rng r(41);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto x = r.below(10);
        EXPECT_LT(x, 10u);
        seen.insert(x);
    }
    EXPECT_EQ(seen.size(), 10u); // all values reachable
}

TEST(RngFactory, StreamsIndependentOfQueryOrder)
{
    RngFactory f(99);
    const auto a1 = f.stream(5).next();
    const auto b1 = f.stream(6).next();
    const auto b2 = f.stream(6).next();
    const auto a2 = f.stream(5).next();
    EXPECT_EQ(a1, a2);
    EXPECT_EQ(b1, b2);
}

TEST(RngFactory, SubFactoriesIndependent)
{
    RngFactory f(123);
    const auto x = f.sub(1).stream(7).next();
    const auto y = f.sub(2).stream(7).next();
    EXPECT_NE(x, y);
}

TEST(RngFactory, MixSeedAvalanche)
{
    // Neighbouring tags must produce uncorrelated seeds.
    const auto a = mixSeed(0, 1);
    const auto b = mixSeed(0, 2);
    int differing = std::popcount(a ^ b);
    EXPECT_GT(differing, 16);
}
