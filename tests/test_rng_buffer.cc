/**
 * @file
 * Tests for the batched-RNG layer: RngBuffer fills, the
 * Rng::fillGaussian / fillChance / skipGaussians stream-equivalence
 * contract the columnar kernels rely on, the firstDraw shortcut, and
 * the interaction with the trial engine's mixSeed-based seeding at
 * several thread counts.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/rng_buffer.hh"

using namespace fracdram;

namespace
{

constexpr std::uint64_t kSeed = 0x5eedULL;

/** n scalar gaussian(mean, sigma) draws from a fresh stream. */
std::vector<double>
scalarGaussians(std::uint64_t seed, std::size_t n, double mean,
                double sigma)
{
    Rng rng(seed);
    std::vector<double> out(n);
    for (auto &v : out)
        v = rng.gaussian(mean, sigma);
    return out;
}

} // namespace

TEST(RngBuffer, GaussianMatchesScalarDraws)
{
    for (const std::size_t n : {std::size_t{1}, std::size_t{2},
                                std::size_t{7}, std::size_t{128},
                                std::size_t{1001}}) {
        Rng rng(kSeed);
        RngBuffer buf;
        const auto span = buf.gaussian(rng, n, 0.25, 1.5);
        ASSERT_EQ(span.size(), n);
        const auto ref = scalarGaussians(kSeed, n, 0.25, 1.5);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(span[i], ref[i]) << "n=" << n << " i=" << i;
    }
}

TEST(RngBuffer, ChanceMatchesScalarDraws)
{
    Rng a(kSeed);
    Rng b(kSeed);
    RngBuffer buf;
    const auto span = buf.chance(a, 513, 0.3);
    ASSERT_EQ(span.size(), 513u);
    for (std::size_t i = 0; i < span.size(); ++i)
        EXPECT_EQ(span[i], b.chance(0.3) ? 1 : 0) << "i=" << i;
}

TEST(RngBuffer, ConsecutiveFillsContinueTheStream)
{
    // Two buffered fills back to back must equal one scalar sequence:
    // the buffer only stores, it never re-seeds or skips.
    Rng rng(kSeed);
    RngBuffer buf;
    std::vector<double> got;
    for (const std::size_t n : {std::size_t{5}, std::size_t{8}}) {
        const auto span = buf.gaussian(rng, n, 0.0, 1.0);
        got.insert(got.end(), span.begin(), span.end());
    }
    const auto ref = scalarGaussians(kSeed, 13, 0.0, 1.0);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], ref[i]) << "i=" << i;
}

TEST(RngBuffer, PartialFillTailHandsSpareToNextDraw)
{
    // An odd-length fill leaves half a Box-Muller pair cached; the
    // next draw (buffered or scalar) must consume that spare exactly
    // like the scalar stream would.
    for (const std::size_t odd : {std::size_t{1}, std::size_t{3},
                                  std::size_t{255}}) {
        Rng rng(kSeed);
        RngBuffer buf;
        const auto head = buf.gaussian(rng, odd, 0.0, 1.0);
        ASSERT_EQ(head.size(), odd);
        const double next = rng.gaussian();
        Rng ref(kSeed);
        for (std::size_t i = 0; i < odd; ++i)
            (void)ref.gaussian();
        EXPECT_EQ(next, ref.gaussian()) << "odd=" << odd;
    }
}

TEST(RngBuffer, SkipGaussiansAdvancesLikeDrawing)
{
    // skipGaussians(n) then a live draw == n discarded draws then a
    // live draw, for even and odd skip counts (the odd case exercises
    // the lazily-materialized spare).
    for (const std::size_t skip : {std::size_t{0}, std::size_t{1},
                                   std::size_t{2}, std::size_t{9},
                                   std::size_t{100}}) {
        Rng fast(kSeed);
        fast.skipGaussians(skip);
        Rng slow(kSeed);
        for (std::size_t i = 0; i < skip; ++i)
            (void)slow.gaussian();
        // Compare a few follow-up draws, crossing pair boundaries.
        for (int i = 0; i < 4; ++i)
            EXPECT_EQ(fast.gaussian(), slow.gaussian())
                << "skip=" << skip << " follow-up " << i;
    }
}

TEST(RngBuffer, SkipInterleavesWithFills)
{
    // skip / fill / skip / fill must track the pure-draw stream.
    Rng fast(kSeed);
    RngBuffer buf;
    std::vector<double> got;
    fast.skipGaussians(3);
    for (const auto &v : buf.gaussian(fast, 4, 0.0, 1.0))
        got.push_back(v);
    fast.skipGaussians(1);
    for (const auto &v : buf.gaussian(fast, 5, 0.0, 1.0))
        got.push_back(v);

    Rng slow(kSeed);
    std::vector<double> ref;
    for (int i = 0; i < 3; ++i)
        (void)slow.gaussian();
    for (int i = 0; i < 4; ++i)
        ref.push_back(slow.gaussian());
    (void)slow.gaussian();
    for (int i = 0; i < 5; ++i)
        ref.push_back(slow.gaussian());

    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], ref[i]) << "i=" << i;
}

TEST(RngBuffer, FirstDrawMatchesFullSeeding)
{
    // The firstDraw/firstChance shortcut must agree with a fully
    // seeded Rng for arbitrary seeds, including the all-zero-state
    // guard corner.
    for (const std::uint64_t seed :
         {std::uint64_t{0}, std::uint64_t{1}, kSeed,
          std::uint64_t{0xffffffffffffffffULL},
          mixSeed(kSeed, 42)}) {
        Rng rng(seed);
        EXPECT_EQ(Rng::firstDraw(seed), rng.next()) << "seed=" << seed;
        Rng rng2(seed);
        EXPECT_EQ(Rng::firstChance(seed, 0.3), rng2.chance(0.3))
            << "seed=" << seed;
    }
}

TEST(RngBuffer, MixSeedStreamsIndependentOfThreadCount)
{
    // The trial engine seeds stream i as mixSeed(root, i); buffered
    // draws inside a parallelMap must give bit-identical results at
    // any thread count (scheduling never touches the streams).
    constexpr std::size_t kTrials = 32;
    constexpr std::size_t kDraws = 101;

    const auto run = [](unsigned threads) {
        parallel::setThreads(threads);
        return parallel::parallelMap(kTrials, [](std::size_t i) {
            Rng rng(mixSeed(kSeed, i));
            RngBuffer buf;
            const auto span = buf.gaussian(rng, kDraws, 0.0, 1.0);
            return std::vector<double>(span.begin(), span.end());
        });
    };

    const auto serial = run(1);
    for (const unsigned threads : {2u, 8u}) {
        const auto par = run(threads);
        ASSERT_EQ(par.size(), serial.size()) << threads << " threads";
        for (std::size_t i = 0; i < kTrials; ++i)
            EXPECT_EQ(par[i], serial[i])
                << threads << " threads, trial " << i;
    }
    parallel::setThreads(0); // restore automatic resolution

    // And the serial run itself must equal direct scalar draws.
    for (std::size_t i = 0; i < kTrials; ++i)
        EXPECT_EQ(serial[i],
                  scalarGaussians(mixSeed(kSeed, i), kDraws, 0.0, 1.0))
            << "trial " << i;
}
