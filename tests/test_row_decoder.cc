/**
 * @file
 * Unit tests for the row-decoder glitch model: the opened-row sets the
 * paper reports (Secs. II-D, III-B, VI-A1) must come out exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sim/row_decoder.hh"
#include "sim/vendor.hh"

using namespace fracdram;
using namespace fracdram::sim;

namespace
{

std::set<RowAddr>
rowSet(const std::vector<OpenedRow> &rows)
{
    std::set<RowAddr> s;
    for (const auto &r : rows)
        s.insert(r.row);
    return s;
}

RowRole
roleOf(const std::vector<OpenedRow> &rows, RowAddr row)
{
    for (const auto &r : rows)
        if (r.row == row)
            return r.role;
    ADD_FAILURE() << "row " << row << " not opened";
    return RowRole::ImplicitOther;
}

constexpr std::uint32_t kRowsPerSubarray = 64;

} // namespace

TEST(RowDecoder, GroupBAdjacentPairOpensThreeRows)
{
    // Paper Sec. V-B: ACT(1)-PRE-ACT(2) opens rows {0, 1, 2}.
    const auto &p = vendorProfile(DramGroup::B);
    const auto rows = glitchOpenedRows(p, 1, 2, kRowsPerSubarray);
    EXPECT_EQ(rowSet(rows), (std::set<RowAddr>{0, 1, 2}));
    EXPECT_EQ(roleOf(rows, 1), RowRole::FirstAct);
    EXPECT_EQ(roleOf(rows, 2), RowRole::SecondAct);
    EXPECT_EQ(roleOf(rows, 0), RowRole::ImplicitAnd);
}

TEST(RowDecoder, GroupBSpreadPairOpensFourRows)
{
    // Paper Sec. III-B: ACT(8)-PRE-ACT(1) opens rows {0, 1, 8, 9}.
    const auto &p = vendorProfile(DramGroup::B);
    const auto rows = glitchOpenedRows(p, 8, 1, kRowsPerSubarray);
    EXPECT_EQ(rowSet(rows), (std::set<RowAddr>{0, 1, 8, 9}));
    EXPECT_EQ(roleOf(rows, 8), RowRole::FirstAct);
    EXPECT_EQ(roleOf(rows, 1), RowRole::SecondAct);
    EXPECT_EQ(roleOf(rows, 0), RowRole::ImplicitAnd);
    EXPECT_EQ(roleOf(rows, 9), RowRole::ImplicitOther);
}

TEST(RowDecoder, GroupCAdjacentPairOpensFourRows)
{
    // Paper Sec. VI-A1: groups C/D cannot open exactly three rows;
    // (1,2) opens the whole aligned block {0, 1, 2, 3}.
    const auto &p = vendorProfile(DramGroup::C);
    const auto rows = glitchOpenedRows(p, 1, 2, kRowsPerSubarray);
    EXPECT_EQ(rowSet(rows), (std::set<RowAddr>{0, 1, 2, 3}));
}

TEST(RowDecoder, PowersOfTwoOnly)
{
    // Every opened set on group C has power-of-two size.
    const auto &p = vendorProfile(DramGroup::C);
    for (RowAddr r1 = 0; r1 < 16; ++r1) {
        for (RowAddr r2 = 0; r2 < 16; ++r2) {
            if (r1 == r2)
                continue;
            const auto n =
                glitchOpenedRows(p, r1, r2, kRowsPerSubarray).size();
            EXPECT_TRUE(n == 1 || n == 2 || n == 4 || n == 8 || n == 16)
                << "r1=" << r1 << " r2=" << r2 << " -> " << n;
        }
    }
}

TEST(RowDecoder, KDifferingBitsOpenTwoToTheK)
{
    const auto &p = vendorProfile(DramGroup::C);
    // 3 differing bits inside the window -> 8 rows.
    const auto rows = glitchOpenedRows(p, 0, 7, kRowsPerSubarray);
    EXPECT_EQ(rows.size(), 8u);
    EXPECT_EQ(rowSet(rows),
              (std::set<RowAddr>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(RowDecoder, OutsideGlitchWindowNoGlitch)
{
    // Differing bit above the glitch window: no extra rows open.
    const auto &p = vendorProfile(DramGroup::B);
    ASSERT_EQ(p.glitchWindowBits, 4);
    const auto rows = glitchOpenedRows(p, 0, 32, kRowsPerSubarray);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].row, 32u);
}

TEST(RowDecoder, CrossSubarrayNoGlitch)
{
    const auto &p = vendorProfile(DramGroup::B);
    // Rows 63 and 64 sit in different sub-arrays.
    const auto rows = glitchOpenedRows(p, 63, 64, kRowsPerSubarray);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].row, 64u);
}

TEST(RowDecoder, SingleBitDifferenceOpensPair)
{
    const auto &p = vendorProfile(DramGroup::C);
    const auto rows = glitchOpenedRows(p, 4, 5, kRowsPerSubarray);
    EXPECT_EQ(rowSet(rows), (std::set<RowAddr>{4, 5}));
    EXPECT_EQ(roleOf(rows, 4), RowRole::FirstAct);
    EXPECT_EQ(roleOf(rows, 5), RowRole::SecondAct);
}

TEST(RowDecoder, SameRowNoGlitch)
{
    const auto &p = vendorProfile(DramGroup::B);
    const auto rows = glitchOpenedRows(p, 3, 3, kRowsPerSubarray);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].row, 3u);
}

TEST(RowDecoder, NonMultiRowGroupsNeverGlitch)
{
    for (const auto g : {DramGroup::A, DramGroup::E, DramGroup::F,
                         DramGroup::G, DramGroup::H, DramGroup::I}) {
        const auto &p = vendorProfile(g);
        const auto rows = glitchOpenedRows(p, 1, 2, kRowsPerSubarray);
        ASSERT_EQ(rows.size(), 1u) << groupName(g);
        EXPECT_EQ(rows[0].row, 2u);
    }
}

TEST(RowDecoder, GroupBNonAlignedAdjacentPair)
{
    // (5, 6) differ in bits 0..1 but span an aligned-4 boundary:
    // 5 ^ 6 = 3, base = 4 -> {4, 5, 6} with the OR row 7 dropped.
    const auto &p = vendorProfile(DramGroup::B);
    const auto rows = glitchOpenedRows(p, 5, 6, kRowsPerSubarray);
    EXPECT_EQ(rowSet(rows), (std::set<RowAddr>{4, 5, 6}));
}
