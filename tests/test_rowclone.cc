/**
 * @file
 * Tests of the in-DRAM row copy.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/rowclone.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

using namespace fracdram;
using namespace fracdram::sim;
using namespace fracdram::softmc;
using namespace fracdram::core;

namespace
{

DramParams
tinyParams()
{
    DramParams p;
    p.numBanks = 1;
    p.subarraysPerBank = 1;
    p.rowsPerSubarray = 64;
    p.colsPerRow = 256;
    return p;
}

BitVector
randomBits(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    BitVector v(n);
    for (std::size_t i = 0; i < n; ++i)
        v.set(i, rng.chance(0.5));
    return v;
}

} // namespace

TEST(RowCopy, CopiesDataWithinBank)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    const auto pattern = randomBits(256, 42);
    mc.writeRowVoltage(0, 20, pattern);
    mc.fillRowVoltage(0, 21, false);
    rowCopy(mc, 0, 20, 21);
    EXPECT_TRUE(mc.readRowVoltage(0, 21) == pattern);
    // Source intact.
    EXPECT_TRUE(mc.readRowVoltage(0, 20) == pattern);
}

TEST(RowCopy, CopyAcrossPolarity)
{
    // Copying from a true-cell row to an anti-cell row moves the
    // *voltage*; the logic view of the destination is complemented.
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    const auto pattern = randomBits(256, 7);
    mc.writeRowVoltage(0, 20, pattern);
    rowCopy(mc, 0, 20, 21);
    const auto logic = mc.readRow(0, 21); // row 21 is anti
    const auto voltage = mc.readRowVoltage(0, 21);
    EXPECT_TRUE(voltage == pattern);
    EXPECT_EQ(logic.hammingDistance(pattern), pattern.size());
}

TEST(RowCopy, SequenceLengthMatchesPaper)
{
    const auto seq = buildRowCopySequence(0, 20, 21);
    EXPECT_EQ(seq.lengthCycles(), rowCopyCycles);
}

TEST(RowCopy, AllOnesInitForFMaj)
{
    // The F-MAJ preparation path: reserved all-ones row copied onto
    // the future fractional row.
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    mc.fillRowVoltage(0, 16, true);
    mc.fillRowVoltage(0, 17, false);
    rowCopy(mc, 0, 16, 17);
    EXPECT_DOUBLE_EQ(mc.readRowVoltage(0, 17).hammingWeight(), 1.0);
}
