/**
 * @file
 * Loopback end-to-end tests of the serving daemon: entropy and PUF
 * round trips, HEALTH/STATS introspection, concurrent clients,
 * backpressure (BUSY) under saturation, per-connection rate
 * limiting, the connection cap, and graceful drain.
 *
 * Every test runs a real Server on an ephemeral loopback port with
 * tiny shards (few columns, small queues) so the whole file stays
 * fast enough for the tsan preset.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <random>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <vector>

#include "service/client.hh"
#include "service/http.hh"
#include "service/net.hh"
#include "service/server.hh"
#include "telemetry/metrics.hh"

using namespace fracdram;
using namespace fracdram::service;

namespace
{

/** Small, fast server config for tests. */
ServerConfig
testConfig(int shards = 2)
{
    ServerConfig cfg;
    cfg.port = 0;
    cfg.numShards = shards;
    cfg.shard.colsPerRow = 256;
    cfg.shard.queueCapacity = 64;
    cfg.shard.maxEntropyBytes = 4096;
    // CI runs the whole file against a multi-reactor server too
    // (FRACDRAM_TEST_REACTORS=2) to exercise the accept handoff and
    // cross-reactor completion routing under tsan.
    if (const char *r = std::getenv("FRACDRAM_TEST_REACTORS")) {
        const int n = std::atoi(r);
        if (n > 0)
            cfg.numReactors = n;
    }
    return cfg;
}

/** RAII server: starts in the constructor, asserts success. */
struct TestServer
{
    explicit TestServer(const ServerConfig &cfg) : server(cfg)
    {
        std::string err;
        const bool ok = server.start(&err);
        EXPECT_TRUE(ok) << err;
    }

    Client connect()
    {
        Client c;
        std::string err;
        EXPECT_TRUE(c.connect("127.0.0.1", server.port(), &err))
            << err;
        return c;
    }

    Server server;
};

/**
 * Deliver @p n raw-entropy requests in ONE write syscall so the
 * server's next read parses the whole burst as a single batch -
 * the saturation and drain tests depend on that determinism.
 */
void
sendBurst(Client &c, int n, std::uint32_t n_bytes)
{
    std::vector<std::uint8_t> wire;
    for (int i = 0; i < n; ++i) {
        Request req;
        req.type = MsgType::GetEntropy;
        req.flags = kFlagRawEntropy;
        req.seq = static_cast<std::uint16_t>(i + 1);
        req.nBytes = n_bytes;
        const auto framed = frame(encodeRequest(req));
        wire.insert(wire.end(), framed.begin(), framed.end());
    }
    std::string err;
    ASSERT_TRUE(writeAll(c.fd(), wire.data(), wire.size(), &err))
        << err;
}

} // namespace

TEST(Service, EntropyBasic)
{
    TestServer ts(testConfig());
    Client c = ts.connect();
    std::vector<std::uint8_t> bytes;
    Status status;
    std::string err;
    ASSERT_TRUE(c.getEntropy(512, false, bytes, status, &err)) << err;
    EXPECT_EQ(status, Status::Ok);
    ASSERT_EQ(bytes.size(), 512u);
    // DRBG output: all-zero would mean the pool never got filled.
    std::size_t nonzero = 0;
    for (const auto b : bytes)
        nonzero += b != 0;
    EXPECT_GT(nonzero, 0u);

    // Two pulls must differ (counter-mode stream, not a replay).
    std::vector<std::uint8_t> again;
    ASSERT_TRUE(c.getEntropy(512, false, again, status, &err)) << err;
    EXPECT_EQ(status, Status::Ok);
    EXPECT_NE(bytes, again);
}

TEST(Service, EntropyRawMode)
{
    TestServer ts(testConfig());
    Client c = ts.connect();
    std::vector<std::uint8_t> bytes;
    Status status;
    std::string err;
    ASSERT_TRUE(c.getEntropy(64, true, bytes, status, &err)) << err;
    EXPECT_EQ(status, Status::Ok);
    EXPECT_EQ(bytes.size(), 64u);
}

TEST(Service, EntropyTooLargeRejected)
{
    TestServer ts(testConfig());
    Client c = ts.connect();
    std::vector<std::uint8_t> bytes;
    Status status;
    std::string err;
    // maxEntropyBytes is 4096 in testConfig.
    ASSERT_TRUE(c.getEntropy(1 << 19, false, bytes, status, &err))
        << err;
    EXPECT_EQ(status, Status::Error);
    EXPECT_TRUE(bytes.empty());
}

TEST(Service, HealthReportsShardsAndCapacity)
{
    TestServer ts(testConfig(3));
    Client c = ts.connect();
    std::string json, err;
    ASSERT_TRUE(c.health(json, &err)) << err;
    EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"shards\": 3"), std::string::npos) << json;
    EXPECT_NE(json.find("\"queue_capacity\": 64"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"queue_depths\": ["), std::string::npos)
        << json;
}

TEST(Service, StatsExposesShardGauges)
{
    const bool was_enabled = telemetry::enabled();
    telemetry::setEnabled(true);
    {
        TestServer ts(testConfig());
        Client c = ts.connect();
        // Generate some work so counters move.
        std::vector<std::uint8_t> bytes;
        Status status;
        std::string err;
        ASSERT_TRUE(c.getEntropy(64, false, bytes, status, &err))
            << err;
        std::string json;
        ASSERT_TRUE(c.stats(json, &err)) << err;
        EXPECT_NE(json.find("service.shard0.queue_depth"),
                  std::string::npos)
            << json;
        EXPECT_NE(json.find("service.jobs"), std::string::npos)
            << json;
    }
    telemetry::setEnabled(was_enabled);
}

TEST(Service, PufEnrollAndResponse)
{
    TestServer ts(testConfig());
    Client c = ts.connect();
    Status status;
    std::string err;

    // Unenrolled challenge: bits come back but hamming is the
    // sentinel.
    BitVector bits;
    std::uint32_t hamming = 0;
    ASSERT_TRUE(c.pufResponse(5, 1, 10, bits, hamming, status, &err))
        << err;
    EXPECT_EQ(status, Status::Ok);
    EXPECT_GT(bits.size(), 0u);
    EXPECT_EQ(hamming, kNoHamming);

    // Enroll, then re-evaluate: the sim PUF is noisy but stable, so
    // the intra-device distance is small (percent-level) while an
    // unrelated response would sit near 50%.
    BitVector ref;
    ASSERT_TRUE(c.pufEnroll(5, 1, 10, ref, status, &err)) << err;
    EXPECT_EQ(status, Status::Ok);
    ASSERT_TRUE(c.pufResponse(5, 1, 10, bits, hamming, status, &err))
        << err;
    EXPECT_EQ(bits.size(), ref.size());
    EXPECT_NE(hamming, kNoHamming);
    EXPECT_LT(hamming, bits.size() / 5);

    // Same challenge on a different device routes to per-device
    // state: not enrolled there.
    ASSERT_TRUE(c.pufResponse(6, 1, 10, bits, hamming, status, &err))
        << err;
    EXPECT_EQ(hamming, kNoHamming);
}

TEST(Service, PufRejectsOutOfRangeChallenge)
{
    TestServer ts(testConfig());
    Client c = ts.connect();
    Status status;
    std::string err;
    BitVector bits;
    ASSERT_TRUE(c.pufEnroll(0, 9999, 0, bits, status, &err)) << err;
    EXPECT_EQ(status, Status::Error);
}

TEST(Service, PufEnrollmentCap)
{
    // device ids are client-chosen, so the reference store must be
    // bounded or a client can exhaust daemon memory.
    ServerConfig cfg = testConfig(1);
    cfg.shard.maxEnrollments = 2;
    TestServer ts(cfg);
    Client c = ts.connect();
    Status status;
    std::string err;
    BitVector bits;
    ASSERT_TRUE(c.pufEnroll(0, 0, 1, bits, status, &err)) << err;
    EXPECT_EQ(status, Status::Ok);
    ASSERT_TRUE(c.pufEnroll(1, 0, 1, bits, status, &err)) << err;
    EXPECT_EQ(status, Status::Ok);
    // Third distinct (device, bank, row) is refused...
    ASSERT_TRUE(c.pufEnroll(2, 0, 1, bits, status, &err)) << err;
    EXPECT_EQ(status, Status::Error);
    // ...but re-enrolling an existing key still works,
    ASSERT_TRUE(c.pufEnroll(0, 0, 1, bits, status, &err)) << err;
    EXPECT_EQ(status, Status::Ok);
    // and enrolled references keep answering.
    std::uint32_t hamming = 0;
    ASSERT_TRUE(c.pufResponse(1, 0, 1, bits, hamming, status, &err))
        << err;
    EXPECT_EQ(status, Status::Ok);
    EXPECT_NE(hamming, kNoHamming);
}

TEST(Service, StopWhileHealthInFlight)
{
    // Regression: stop() used to join connection threads while
    // holding connMutex_, deadlocking against an in-flight HEALTH
    // whose handler takes the same mutex in activeConnections().
    TestServer ts(testConfig(1));
    const std::uint16_t port = ts.server.port();
    constexpr int kThreads = 4;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([port] {
            Client c;
            std::string err, json;
            if (!c.connect("127.0.0.1", port, &err))
                return;
            // Hammer HEALTH until the drain hangs up on us.
            while (c.health(json, &err)) {
            }
        });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ts.server.stop(); // must return; the old code could hang here
    for (auto &t : threads)
        t.join();
}

TEST(Service, WriteAllTimesOutOnStalledPeer)
{
    // A peer that never drains its receive buffer must fail the
    // write once SO_SNDTIMEO expires instead of parking the writer
    // in send() forever.
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    const int tiny = 4096;
    ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &tiny, sizeof(tiny));
    ::setsockopt(fds[1], SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
    setSendTimeout(fds[0], 100);
    const std::vector<std::uint8_t> big(4u << 20, 0xAB);
    std::string err;
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(writeAll(fds[0], big.data(), big.size(), &err));
    const auto waited = std::chrono::duration_cast<
                            std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    EXPECT_LT(waited, 10000) << "send did not respect SO_SNDTIMEO";
    EXPECT_NE(err.find("timeout"), std::string::npos) << err;
    closeFd(fds[0]);
    closeFd(fds[1]);
}

TEST(Service, ConcurrentClients)
{
    TestServer ts(testConfig(2));
    constexpr int kThreads = 8;
    constexpr int kReqs = 20;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&ts, &failures]() {
            Client c;
            std::string err;
            if (!c.connect("127.0.0.1", ts.server.port(), &err)) {
                ++failures;
                return;
            }
            for (int i = 0; i < kReqs; ++i) {
                std::vector<std::uint8_t> bytes;
                Status status;
                if (!c.getEntropy(128, false, bytes, status, &err) ||
                    status != Status::Ok || bytes.size() != 128) {
                    ++failures;
                    return;
                }
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_GE(ts.server.acceptedConnections(),
              static_cast<std::uint64_t>(kThreads));
}

TEST(Service, BusyOnSaturation)
{
    // One shard, a two-slot queue, one job per wakeup: a pipelined
    // burst of slow raw requests must overflow the queue and come
    // back BUSY instead of growing it without bound.
    ServerConfig cfg = testConfig(1);
    cfg.shard.queueCapacity = 2;
    cfg.shard.maxBatchJobs = 1;
    TestServer ts(cfg);
    Client c = ts.connect();
    std::string err;

    constexpr int kBurst = 20;
    sendBurst(c, kBurst, 512);
    int ok = 0, busy = 0;
    for (int i = 0; i < kBurst; ++i) {
        Response resp;
        ASSERT_TRUE(c.recv(resp, &err, 60000)) << err;
        if (resp.status == Status::Ok)
            ++ok;
        else if (resp.status == Status::Busy)
            ++busy;
        // The queue-depth gauge must never exceed the bound.
        EXPECT_LE(ts.server.shardQueueDepth(0),
                  cfg.shard.queueCapacity);
    }
    EXPECT_EQ(ok + busy, kBurst);
    EXPECT_GT(ok, 0);
    EXPECT_GT(busy, 0) << "queue never saturated - backpressure "
                          "untested";
}

TEST(Service, RateLimitPerConnection)
{
    ServerConfig cfg = testConfig(1);
    cfg.rateLimitPerConn = 5.0; // one second of burst = 5 tokens
    TestServer ts(cfg);
    Client c = ts.connect();
    std::string err;
    int ok = 0, limited = 0;
    for (int i = 0; i < 20; ++i) {
        std::vector<std::uint8_t> bytes;
        Status status;
        ASSERT_TRUE(c.getEntropy(16, false, bytes, status, &err))
            << err;
        if (status == Status::Ok)
            ++ok;
        else if (status == Status::RateLimited)
            ++limited;
    }
    EXPECT_GT(ok, 0);
    EXPECT_GT(limited, 0);
    // HEALTH is answered inline and never rate-limited.
    std::string json;
    EXPECT_TRUE(c.health(json, &err)) << err;
}

TEST(Service, ConnectionLimit)
{
    ServerConfig cfg = testConfig(1);
    cfg.maxConnections = 2;
    TestServer ts(cfg);
    Client a = ts.connect();
    Client b = ts.connect();
    // Exchange a request on each so both connections are provably
    // registered before the third arrives.
    std::string err, json;
    ASSERT_TRUE(a.health(json, &err)) << err;
    ASSERT_TRUE(b.health(json, &err)) << err;

    // The third connection gets a BUSY frame, then EOF.
    Client c;
    ASSERT_TRUE(c.connect("127.0.0.1", ts.server.port(), &err))
        << err;
    Response resp;
    ASSERT_TRUE(c.recv(resp, &err, 10000)) << err;
    EXPECT_EQ(resp.status, Status::Busy);
    EXPECT_GE(ts.server.rejectedConnections(), 1u);
}

TEST(Service, GracefulDrain)
{
    // Slow single-job batches so the burst is still queued when
    // stop() lands: the drain contract says every accepted request
    // is answered anyway.
    ServerConfig cfg = testConfig(1);
    cfg.shard.maxBatchJobs = 1;
    TestServer ts(cfg);
    const std::uint16_t port = ts.server.port();
    Client c = ts.connect();
    std::string err;

    constexpr int kInFlight = 8;
    sendBurst(c, kInFlight, 512);

    // Wait until the shard provably has queued work (the worker is
    // mid-burst), then drain. The deadline only guards against a
    // pathologically fast worker; the test stays valid either way.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(20);
    while (ts.server.shardQueueDepth(0) == 0 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
    }
    ts.server.stop();
    EXPECT_FALSE(ts.server.running());

    // All responses were written before the server closed the
    // connection; they are sitting in our socket buffer.
    int answered = 0;
    for (int i = 0; i < kInFlight; ++i) {
        Response resp;
        if (!c.recv(resp, &err, 60000))
            break;
        EXPECT_TRUE(resp.status == Status::Ok ||
                    resp.status == Status::Busy)
            << statusName(resp.status);
        EXPECT_EQ(resp.seq, i + 1);
        ++answered;
    }
    EXPECT_EQ(answered, kInFlight);

    // After the drain the listener is gone.
    Client late;
    EXPECT_FALSE(late.connect("127.0.0.1", port, &err));

    // stop() is idempotent.
    ts.server.stop();
}

TEST(Service, RequestIdRoundTripsAndLandsInTraceRing)
{
    const bool was_enabled = telemetry::enabled();
    telemetry::setEnabled(true);
    {
        ServerConfig cfg = testConfig(2);
        cfg.traceRingCapacity = 16;
        TestServer ts(cfg);
        Client c = ts.connect();
        std::string err;

        Request req;
        req.type = MsgType::GetEntropy;
        req.flags = kFlagRequestId;
        req.requestId = 0xABCD1234DEADBEEFull;
        req.seq = 7;
        req.nBytes = 64;
        ASSERT_TRUE(c.send(req, &err)) << err;
        Response resp;
        ASSERT_TRUE(c.recv(resp, &err, 10000)) << err;
        EXPECT_EQ(resp.status, Status::Ok);
        EXPECT_NE(resp.flags & kFlagRequestId, 0);
        EXPECT_EQ(resp.requestId, req.requestId);
        EXPECT_EQ(resp.seq, 7);

        // The connection thread pushes the timeline after the
        // response hits the wire, so the client can get here first.
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(10);
        while (ts.server.traceRing().size() == 0 &&
               std::chrono::steady_clock::now() < deadline) {
            std::this_thread::yield();
        }
        const auto timelines = ts.server.traceRing().lastN(4);
        ASSERT_EQ(timelines.size(), 1u);
        const auto &t = timelines[0];
        EXPECT_EQ(t.requestId, req.requestId);
        EXPECT_EQ(static_cast<MsgType>(t.type), MsgType::GetEntropy);
        EXPECT_EQ(static_cast<Status>(t.status), Status::Ok);
        EXPECT_GE(t.shard, 0);
        // Stage stamps are monotonic through the daemon.
        EXPECT_GT(t.recvNs, 0u);
        EXPECT_GE(t.enqueueNs, t.recvNs);
        EXPECT_GE(t.dequeueNs, t.enqueueNs);
        EXPECT_GE(t.genStartNs, t.dequeueNs);
        EXPECT_GE(t.genEndNs, t.genStartNs);
        EXPECT_GE(t.writeNs, t.genEndNs);

        // An untagged request must stay out of the ring.
        req.flags = 0;
        req.seq = 8;
        ASSERT_TRUE(c.send(req, &err)) << err;
        ASSERT_TRUE(c.recv(resp, &err, 10000)) << err;
        EXPECT_EQ(resp.status, Status::Ok);
        EXPECT_EQ(resp.flags & kFlagRequestId, 0);
        EXPECT_EQ(ts.server.traceRing().totalPushed(), 1u);
    }
    telemetry::setEnabled(was_enabled);
}

TEST(Service, MetricsEndpointAndVarzTrace)
{
    const bool was_enabled = telemetry::enabled();
    telemetry::setEnabled(true);
    {
        ServerConfig cfg = testConfig(1);
        cfg.metricsPort = 0; // ephemeral
        TestServer ts(cfg);
        ASSERT_GT(ts.server.metricsPort(), 0);
        Client c = ts.connect();
        std::string err;

        Request req;
        req.type = MsgType::GetEntropy;
        req.flags = kFlagRequestId;
        req.requestId = 424242;
        req.seq = 1;
        req.nBytes = 64;
        ASSERT_TRUE(c.send(req, &err)) << err;
        Response resp;
        ASSERT_TRUE(c.recv(resp, &err, 10000)) << err;
        EXPECT_EQ(resp.status, Status::Ok);
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(10);
        while (ts.server.traceRing().size() == 0 &&
               std::chrono::steady_clock::now() < deadline) {
            std::this_thread::yield();
        }

        HttpResult r;
        ASSERT_TRUE(httpGet("127.0.0.1", ts.server.metricsPort(),
                            "/metrics", r, &err))
            << err;
        EXPECT_EQ(r.status, 200);
        EXPECT_NE(r.body.find("fracdram_service_jobs_total"),
                  std::string::npos)
            << r.body;
        EXPECT_NE(
            r.body.find(
                "fracdram_service_request_ns_bucket{le=\"+Inf\"}"),
            std::string::npos)
            << r.body;

        ASSERT_TRUE(httpGet("127.0.0.1", ts.server.metricsPort(),
                            "/varz?trace=8", r, &err))
            << err;
        EXPECT_EQ(r.status, 200);
        EXPECT_NE(r.body.find("\"requests\": ["), std::string::npos)
            << r.body;
        EXPECT_NE(r.body.find("\"id\": 424242"), std::string::npos)
            << r.body;
        EXPECT_NE(r.body.find("\"queue_wait_ns\""), std::string::npos)
            << r.body;

        ASSERT_TRUE(httpGet("127.0.0.1", ts.server.metricsPort(),
                            "/nope", r, &err))
            << err;
        EXPECT_EQ(r.status, 404);
    }
    telemetry::setEnabled(was_enabled);
}

TEST(Service, HealthzFlipsUnderSloBreachAndRecovers)
{
    const bool was_enabled = telemetry::enabled();
    telemetry::setEnabled(true);
    {
        ServerConfig cfg = testConfig(1);
        cfg.metricsPort = 0;
        cfg.sloP99Us = 1; // any real request breaches a 1 us SLO
        // Keep the sampling thread parked so the test drives the
        // evaluation windows deterministically via sampleOnce().
        cfg.watchdogIntervalMs = 3600 * 1000;
        TestServer ts(cfg);
        ASSERT_NE(ts.server.watchdog(), nullptr);
        Client c = ts.connect();
        std::string err;
        HttpResult r;

        ASSERT_TRUE(httpGet("127.0.0.1", ts.server.metricsPort(),
                            "/healthz", r, &err))
            << err;
        EXPECT_EQ(r.status, 200);

        ts.server.watchdog()->sampleOnce(); // baseline

        // Two windows of real (traced, so request_ns moves) traffic.
        for (int window = 0; window < 2; ++window) {
            const std::uint64_t before =
                ts.server.traceRing().totalPushed();
            Request req;
            req.type = MsgType::GetEntropy;
            req.flags = kFlagRequestId;
            req.nBytes = 64;
            for (int i = 0; i < 4; ++i) {
                req.seq = static_cast<std::uint16_t>(i + 1);
                req.requestId = static_cast<std::uint64_t>(
                                    window + 1) << 8 | i;
                ASSERT_TRUE(c.send(req, &err)) << err;
                Response resp;
                ASSERT_TRUE(c.recv(resp, &err, 10000)) << err;
                EXPECT_EQ(resp.status, Status::Ok);
            }
            // request_ns is observed after the responses are on the
            // wire; wait for the pushes so the window sees them.
            const auto deadline =
                std::chrono::steady_clock::now() +
                std::chrono::seconds(10);
            while (ts.server.traceRing().totalPushed() < before + 4 &&
                   std::chrono::steady_clock::now() < deadline) {
                std::this_thread::yield();
            }
            ts.server.watchdog()->sampleOnce();
        }
        EXPECT_FALSE(ts.server.watchdog()->healthy());
        EXPECT_EQ(ts.server.watchdog()->flips(), 1u);
        ASSERT_TRUE(httpGet("127.0.0.1", ts.server.metricsPort(),
                            "/healthz", r, &err))
            << err;
        EXPECT_EQ(r.status, 503);
        EXPECT_NE(r.body.find("slo"), std::string::npos) << r.body;

        // Drain: two idle windows restore health and /healthz.
        ts.server.watchdog()->sampleOnce();
        ts.server.watchdog()->sampleOnce();
        EXPECT_TRUE(ts.server.watchdog()->healthy());
        ASSERT_TRUE(httpGet("127.0.0.1", ts.server.metricsPort(),
                            "/healthz", r, &err))
            << err;
        EXPECT_EQ(r.status, 200);
        EXPECT_NE(r.body.find("ok"), std::string::npos);
    }
    telemetry::setEnabled(was_enabled);
}

/**
 * Frames must survive arbitrary TCP segmentation: deliver a pipelined
 * burst one byte per write syscall and expect every response, in
 * order. Exercises the FrameReader resume path and the reactor's
 * partial-read handling end to end.
 */
TEST(Service, TornFramesOneBytePerWrite)
{
    TestServer ts(testConfig());
    Client c = ts.connect();
    std::string err;

    constexpr int kFrames = 3;
    std::vector<std::uint8_t> wire;
    for (int i = 0; i < kFrames; ++i) {
        Request req;
        req.type = MsgType::GetEntropy;
        req.flags = kFlagRawEntropy;
        req.seq = static_cast<std::uint16_t>(i + 1);
        req.nBytes = 32;
        const auto framed = frame(encodeRequest(req));
        wire.insert(wire.end(), framed.begin(), framed.end());
    }
    for (std::size_t i = 0; i < wire.size(); ++i) {
        ASSERT_TRUE(writeAll(c.fd(), &wire[i], 1, &err)) << err;
        // An occasional pause defeats kernel coalescing so the
        // server really sees torn reads, not one big buffer.
        if (i % 7 == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (int i = 0; i < kFrames; ++i) {
        Response resp;
        ASSERT_TRUE(c.recv(resp, &err, 10000)) << err;
        EXPECT_EQ(resp.status, Status::Ok);
        EXPECT_EQ(resp.seq, i + 1);
        EXPECT_EQ(resp.data.size(), 32u);
    }
}

/** Same contract under random split points (seeded, reproducible). */
TEST(Service, TornFramesRandomSplits)
{
    TestServer ts(testConfig());
    Client c = ts.connect();
    std::string err;

    constexpr int kFrames = 8;
    std::vector<std::uint8_t> wire;
    for (int i = 0; i < kFrames; ++i) {
        Request req;
        req.type = MsgType::GetEntropy;
        req.flags = kFlagRawEntropy;
        req.seq = static_cast<std::uint16_t>(i + 1);
        req.nBytes = 16 + 16 * static_cast<std::uint32_t>(i);
        const auto framed = frame(encodeRequest(req));
        wire.insert(wire.end(), framed.begin(), framed.end());
    }
    std::mt19937 rng(0xF12ACD12u);
    std::uniform_int_distribution<std::size_t> chunk(1, 11);
    std::size_t off = 0;
    while (off < wire.size()) {
        const std::size_t n = std::min(chunk(rng), wire.size() - off);
        ASSERT_TRUE(writeAll(c.fd(), wire.data() + off, n, &err))
            << err;
        off += n;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    for (int i = 0; i < kFrames; ++i) {
        Response resp;
        ASSERT_TRUE(c.recv(resp, &err, 10000)) << err;
        EXPECT_EQ(resp.status, Status::Ok);
        EXPECT_EQ(resp.seq, i + 1);
        EXPECT_EQ(resp.data.size(),
                  16u + 16u * static_cast<std::uint32_t>(i));
    }
}

/**
 * Regression: a scraper that connects and then goes silent (never
 * sends, never reads) must not wedge /metrics for everybody else.
 * The old serial responder blocked on that socket; the poll loop
 * keeps answering and eventually cuts the stalled peer loose.
 */
TEST(Service, MetricsSurvivesStalledScraper)
{
    ServerConfig cfg = testConfig(1);
    cfg.metricsPort = 0;
    TestServer ts(cfg);
    ASSERT_GT(ts.server.metricsPort(), 0);
    std::string err;

    // Peer 1: connects and never sends a byte.
    const int silent =
        connectTcp("127.0.0.1", ts.server.metricsPort(), &err);
    ASSERT_GE(silent, 0) << err;

    // Peer 2: sends a request but never reads the response.
    const int deaf =
        connectTcp("127.0.0.1", ts.server.metricsPort(), &err);
    ASSERT_GE(deaf, 0) << err;
    const std::string get = "GET /metrics HTTP/1.0\r\n\r\n";
    ASSERT_TRUE(writeAll(deaf, get.data(), get.size(), &err)) << err;

    // While both stalled peers hold their connections, well-behaved
    // scrapers must keep being served.
    for (int i = 0; i < 3; ++i) {
        HttpResult r;
        ASSERT_TRUE(httpGet("127.0.0.1", ts.server.metricsPort(),
                            "/metrics", r, &err))
            << err;
        EXPECT_EQ(r.status, 200);
        EXPECT_NE(r.body.find("fracdram_"), std::string::npos);
    }

    // The responder's per-connection deadline must reclaim the
    // silent peer's fd: its socket sees EOF within a few seconds.
    ASSERT_EQ(waitReadable(silent, 10000), 1);
    char b;
    EXPECT_EQ(readSome(silent, &b, 1), 0);
    closeFd(silent);
    closeFd(deaf);
}

/**
 * The full request/response contract holds with more than one
 * reactor: accepts are handed off round-robin and completions are
 * routed across threads back to the owning loop.
 */
TEST(Service, MultiReactorRoundTrips)
{
    ServerConfig cfg = testConfig(2);
    cfg.numReactors = 2;
    TestServer ts(cfg);
    EXPECT_EQ(ts.server.numReactors(), 2);

    constexpr int kClients = 4;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int t = 0; t < kClients; ++t) {
        threads.emplace_back([&ts, &failures, t] {
            Client c;
            std::string err;
            if (!c.connect("127.0.0.1", ts.server.port(), &err)) {
                ++failures;
                return;
            }
            for (int i = 0; i < 16; ++i) {
                Request req;
                req.type = MsgType::GetEntropy;
                req.flags = kFlagRawEntropy;
                req.seq = static_cast<std::uint16_t>(t * 100 + i);
                req.nBytes = 64;
                Response resp;
                if (!c.send(req, &err) ||
                    !c.recv(resp, &err, 10000) ||
                    resp.status != Status::Ok ||
                    resp.seq != req.seq ||
                    resp.data.size() != 64u) {
                    ++failures;
                    return;
                }
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(failures.load(), 0);
}

TEST(Service, SuppressedWarnsAreCounted)
{
    telemetry::setEnabled(true);
    TestServer ts(testConfig());
    const auto counterOf = [](const std::string &name) {
        const auto snap = telemetry::Metrics::instance().snapshot();
        const auto it = snap.counters.find(name);
        return it != snap.counters.end() ? it->second
                                         : std::uint64_t(0);
    };
    const std::uint64_t before = counterOf("log.suppressed");

    // A burst of undecodable frames inside one 5s warn window: at
    // most the first one logs, every swallowed WARN must show up in
    // the counter instead of vanishing silently.
    for (int i = 0; i < 3; ++i) {
        Client c = ts.connect();
        const std::vector<std::uint8_t> garbage(8, 0xFF);
        const auto framed = frame(garbage);
        std::string err;
        ASSERT_TRUE(writeAll(c.fd(), framed.data(), framed.size(),
                             &err))
            << err;
        Response resp;
        c.recv(resp, &err, 5000); // Error answer, then the close
    }
    EXPECT_GE(counterOf("log.suppressed"), before + 2)
        << "3 bad frames, >=1 warn -> >=2 suppressions counted";
}
