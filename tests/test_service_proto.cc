/**
 * @file
 * Protocol framing tests: encode/decode round trips for every
 * message type, malformed / truncated / oversized frames, partial
 * (chunked) delivery through the FrameReader, and a fuzz-style
 * random round trip.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "service/proto.hh"

using namespace fracdram;
using namespace fracdram::service;

namespace
{

Request
makeRequest(MsgType type, std::uint16_t seq)
{
    Request req;
    req.type = type;
    req.seq = seq;
    switch (type) {
    case MsgType::GetEntropy:
        req.nBytes = 4096;
        req.flags = kFlagRawEntropy;
        break;
    case MsgType::PufEnroll:
    case MsgType::PufResponse:
        req.device = 7;
        req.bank = 3;
        req.row = 250;
        break;
    default:
        break;
    }
    return req;
}

/** Feed a byte stream to a reader in chunks of @p chunk bytes. */
std::vector<std::vector<std::uint8_t>>
reassemble(const std::vector<std::uint8_t> &stream, std::size_t chunk)
{
    FrameReader reader;
    std::vector<std::vector<std::uint8_t>> frames;
    std::vector<std::uint8_t> payload;
    for (std::size_t i = 0; i < stream.size(); i += chunk) {
        const std::size_t n = std::min(chunk, stream.size() - i);
        EXPECT_TRUE(reader.feed(stream.data() + i, n));
        while (reader.next(payload))
            frames.push_back(payload);
    }
    EXPECT_TRUE(reader.error().empty());
    EXPECT_EQ(reader.buffered(), 0u);
    return frames;
}

} // namespace

TEST(ServiceProto, RequestRoundTripAllTypes)
{
    for (const auto type :
         {MsgType::GetEntropy, MsgType::PufEnroll,
          MsgType::PufResponse, MsgType::Health, MsgType::Stats}) {
        const Request req = makeRequest(type, 42);
        const auto payload = encodeRequest(req);
        Request back;
        std::string err;
        ASSERT_TRUE(decodeRequest(payload.data(), payload.size(),
                                  back, &err))
            << err;
        EXPECT_EQ(back, req) << msgTypeName(type);
    }
}

TEST(ServiceProto, ResponseRoundTripOk)
{
    Response entropy;
    entropy.type = MsgType::GetEntropy;
    entropy.seq = 9;
    entropy.data = {1, 2, 3, 255, 0, 128};
    auto payload = encodeResponse(entropy);
    Response back;
    std::string err;
    ASSERT_TRUE(
        decodeResponse(payload.data(), payload.size(), back, &err))
        << err;
    EXPECT_EQ(back.type, MsgType::GetEntropy);
    EXPECT_EQ(back.seq, 9);
    EXPECT_EQ(back.status, Status::Ok);
    EXPECT_EQ(back.data, entropy.data);

    Response puf;
    puf.type = MsgType::PufResponse;
    puf.seq = 10;
    puf.bits = BitVector::fromString("1011001110001111011");
    puf.hamming = 3;
    payload = encodeResponse(puf);
    ASSERT_TRUE(
        decodeResponse(payload.data(), payload.size(), back, &err))
        << err;
    EXPECT_EQ(back.bits, puf.bits);
    EXPECT_EQ(back.hamming, 3u);

    Response health;
    health.type = MsgType::Health;
    health.seq = 11;
    health.text = "{\"status\": \"ok\"}";
    payload = encodeResponse(health);
    ASSERT_TRUE(
        decodeResponse(payload.data(), payload.size(), back, &err))
        << err;
    EXPECT_EQ(back.text, health.text);
}

TEST(ServiceProto, ResponseRoundTripErrorStatuses)
{
    for (const auto status : {Status::Busy, Status::Error,
                              Status::RateLimited,
                              Status::Capability}) {
        Response resp;
        resp.type = MsgType::GetEntropy;
        resp.seq = 77;
        resp.status = status;
        resp.text = "reason text";
        const auto payload = encodeResponse(resp);
        Response back;
        std::string err;
        ASSERT_TRUE(decodeResponse(payload.data(), payload.size(),
                                   back, &err))
            << err;
        EXPECT_EQ(back.status, status);
        EXPECT_EQ(back.text, "reason text");
        EXPECT_TRUE(back.data.empty());
    }
}

TEST(ServiceProto, MalformedRequestsRejected)
{
    const auto good = encodeRequest(makeRequest(MsgType::GetEntropy, 1));
    Request out;
    std::string err;

    // Every strict prefix of a valid payload must be rejected.
    for (std::size_t n = 0; n < good.size(); ++n)
        EXPECT_FALSE(decodeRequest(good.data(), n, out, &err))
            << "prefix of " << n << " bytes decoded";

    // Trailing garbage is rejected too.
    auto longer = good;
    longer.push_back(0);
    EXPECT_FALSE(
        decodeRequest(longer.data(), longer.size(), out, &err));
    EXPECT_NE(err.find("trailing"), std::string::npos);

    // Unknown type byte.
    auto bad_type = good;
    bad_type[0] = 0x7F;
    EXPECT_FALSE(
        decodeRequest(bad_type.data(), bad_type.size(), out, &err));
    EXPECT_NE(err.find("unknown"), std::string::npos);
}

TEST(ServiceProto, MalformedResponsesRejected)
{
    Response resp;
    resp.type = MsgType::GetEntropy;
    resp.data = {1, 2, 3};
    const auto good = encodeResponse(resp);
    Response out;
    std::string err;
    for (std::size_t n = 0; n < good.size(); ++n)
        EXPECT_FALSE(decodeResponse(good.data(), n, out, &err));

    // Response bit must be set.
    auto no_bit = good;
    no_bit[0] = static_cast<std::uint8_t>(no_bit[0] & ~kResponseBit);
    EXPECT_FALSE(
        decodeResponse(no_bit.data(), no_bit.size(), out, &err));
    EXPECT_NE(err.find("response bit"), std::string::npos);

    // Unknown status byte.
    auto bad_status = good;
    bad_status[4] = 200;
    EXPECT_FALSE(decodeResponse(bad_status.data(), bad_status.size(),
                                out, &err));
}

TEST(ServiceProto, FrameReaderHandlesPartialDelivery)
{
    std::vector<std::uint8_t> stream;
    std::vector<std::vector<std::uint8_t>> sent;
    for (std::uint16_t i = 0; i < 5; ++i) {
        const auto payload =
            encodeRequest(makeRequest(MsgType::PufEnroll, i));
        sent.push_back(payload);
        const auto framed = frame(payload);
        stream.insert(stream.end(), framed.begin(), framed.end());
    }
    // Byte-at-a-time, then a couple of awkward chunk sizes.
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                    std::size_t{7}, stream.size()}) {
        const auto frames = reassemble(stream, chunk);
        ASSERT_EQ(frames.size(), sent.size()) << "chunk " << chunk;
        for (std::size_t i = 0; i < sent.size(); ++i)
            EXPECT_EQ(frames[i], sent[i]);
    }
}

TEST(ServiceProto, FrameReaderRejectsOversizedFrame)
{
    FrameReader reader(1024);
    // Length prefix claims 2 GiB.
    const std::uint8_t huge[4] = {0, 0, 0, 0x80};
    EXPECT_TRUE(reader.feed(huge, sizeof(huge)));
    std::vector<std::uint8_t> payload;
    EXPECT_FALSE(reader.next(payload));
    EXPECT_FALSE(reader.error().empty());
    // Poisoned: further feeds and nexts fail.
    EXPECT_FALSE(reader.feed(huge, sizeof(huge)));
    EXPECT_FALSE(reader.next(payload));
}

TEST(ServiceProto, FrameReaderIncompleteFrameYieldsNothing)
{
    const auto payload =
        encodeRequest(makeRequest(MsgType::GetEntropy, 1));
    const auto framed = frame(payload);
    FrameReader reader;
    reader.feed(framed.data(), framed.size() - 1);
    std::vector<std::uint8_t> out;
    EXPECT_FALSE(reader.next(out));
    // The last byte completes it.
    reader.feed(framed.data() + framed.size() - 1, 1);
    ASSERT_TRUE(reader.next(out));
    EXPECT_EQ(out, payload);
}

TEST(ServiceProto, PackUnpackBitsRoundTrip)
{
    Rng rng(123);
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{7},
          std::size_t{8}, std::size_t{63}, std::size_t{64},
          std::size_t{65}, std::size_t{1000}}) {
        BitVector bits(n);
        for (std::size_t i = 0; i < n; ++i)
            bits.set(i, rng.chance(0.5));
        const auto packed = packBits(bits);
        EXPECT_EQ(packed.size(), (n + 7) / 8);
        const BitVector back = unpackBits(packed.data(), n);
        EXPECT_EQ(back, bits) << "n=" << n;
    }
}

TEST(ServiceProto, UnpackBitsIgnoresTailGarbage)
{
    // A dirty tail byte must not leak bits past size().
    const std::uint8_t bytes[1] = {0xFF};
    const BitVector bits = unpackBits(bytes, 3);
    EXPECT_EQ(bits.size(), 3u);
    EXPECT_EQ(bits.popcount(), 3u);
    EXPECT_EQ(bits.words()[0], 0x7u);
}

TEST(ServiceProto, FuzzRequestRoundTripThroughChunkedReader)
{
    Rng rng(20260805);
    std::vector<Request> sent;
    std::vector<std::uint8_t> stream;
    for (int i = 0; i < 500; ++i) {
        Request req;
        req.type = static_cast<MsgType>(1 + rng.below(5));
        req.flags = static_cast<std::uint8_t>(rng.below(2));
        // Half the stream speaks v2 (traced): the optional request
        // id must round-trip and must not shift later frames.
        if (rng.below(2) == 1) {
            req.flags |= kFlagRequestId;
            req.requestId = rng.next();
        }
        req.seq = static_cast<std::uint16_t>(rng.below(65536));
        req.nBytes = static_cast<std::uint32_t>(rng.below(1u << 20));
        req.device = static_cast<std::uint32_t>(rng.next());
        req.bank = static_cast<std::uint32_t>(rng.next());
        req.row = static_cast<std::uint32_t>(rng.next());
        // Fields not carried by this type won't round-trip; zero
        // them so equality holds.
        if (req.type == MsgType::GetEntropy) {
            req.bank = req.row = 0;
            // A third of the entropy traffic speaks v3 (fleet): the
            // explicit device id must round-trip and must not shift
            // later frames.
            if (rng.below(3) == 1)
                req.flags |= kFlagDeviceId;
            else
                req.device = 0;
        } else if (req.type == MsgType::PufEnroll ||
                   req.type == MsgType::PufResponse) {
            req.nBytes = 0;
        } else {
            req.nBytes = req.device = req.bank = req.row = 0;
        }
        sent.push_back(req);
        const auto framed = frame(encodeRequest(req));
        stream.insert(stream.end(), framed.begin(), framed.end());
    }

    FrameReader reader;
    std::vector<Request> got;
    std::vector<std::uint8_t> payload;
    std::size_t pos = 0;
    while (pos < stream.size()) {
        const std::size_t chunk = std::min<std::size_t>(
            1 + rng.below(37), stream.size() - pos);
        ASSERT_TRUE(reader.feed(stream.data() + pos, chunk));
        pos += chunk;
        while (reader.next(payload)) {
            Request req;
            std::string err;
            ASSERT_TRUE(decodeRequest(payload.data(), payload.size(),
                                      req, &err))
                << err;
            got.push_back(req);
        }
    }
    ASSERT_EQ(got.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i)
        EXPECT_EQ(got[i], sent[i]) << "request " << i;
}

TEST(ServiceProto, FuzzDecoderNeverAcceptsMutatedGarbage)
{
    // Random byte soup must never crash the decoders, and mutated
    // valid frames must either decode cleanly or be rejected -
    // decode(encode(x)) == x is checked when decoding succeeds.
    Rng rng(42);
    for (int i = 0; i < 2000; ++i) {
        std::vector<std::uint8_t> bytes(rng.below(40));
        for (auto &b : bytes)
            b = static_cast<std::uint8_t>(rng.next());
        Request req;
        Response resp;
        if (decodeRequest(bytes.data(), bytes.size(), req)) {
            const auto re = encodeRequest(req);
            EXPECT_EQ(re, bytes);
        }
        if (decodeResponse(bytes.data(), bytes.size(), resp)) {
            Response canonical = resp;
            const auto re = encodeResponse(canonical);
            EXPECT_EQ(re, bytes);
        }
    }
}

TEST(ServiceProto, RequestIdRoundTripAndEcho)
{
    Request req = makeRequest(MsgType::GetEntropy, 9);
    req.flags |= kFlagRequestId;
    req.requestId = 0xDEADBEEFCAFEF00Dull;

    const auto bytes = encodeRequest(req);
    // v1 header (4 bytes) + request id (8) + GET_ENTROPY body (4).
    EXPECT_EQ(bytes.size(), 16u);
    Request back;
    std::string err;
    ASSERT_TRUE(decodeRequest(bytes.data(), bytes.size(), back, &err))
        << err;
    EXPECT_EQ(back, req);

    // A v1 frame of the same request must stay id-free and 4 bytes
    // shorter - the flag, not the field, versions the wire format.
    Request v1 = req;
    v1.flags = static_cast<std::uint8_t>(v1.flags & ~kFlagRequestId);
    v1.requestId = 0;
    EXPECT_EQ(encodeRequest(v1).size(), 8u);

    // Truncating the id must be rejected, not misparsed as a body.
    for (std::size_t cut = 5; cut < 12; ++cut) {
        Request junk;
        EXPECT_FALSE(decodeRequest(bytes.data(), cut, junk))
            << "cut=" << cut;
    }

    Response resp;
    resp.type = req.type;
    resp.seq = req.seq;
    resp.data = {1, 2, 3};
    echoRequestId(resp, req);
    EXPECT_EQ(resp.requestId, req.requestId);
    const auto rbytes = encodeResponse(resp);
    Response rback;
    ASSERT_TRUE(decodeResponse(rbytes.data(), rbytes.size(), rback,
                               &err))
        << err;
    EXPECT_EQ(rback.requestId, req.requestId);
    EXPECT_EQ(rback.flags & kFlagRequestId, kFlagRequestId);
    EXPECT_EQ(rback.data, resp.data);
}

TEST(ServiceProto, DeviceIdFlagRoundTrip)
{
    Request req;
    req.type = MsgType::GetEntropy;
    req.seq = 21;
    req.flags = kFlagDeviceId;
    req.device = 0x0400001Bu; // group E, chip 27
    req.nBytes = 64;

    const auto bytes = encodeRequest(req);
    // v1 header (4 bytes) + device id (4) + GET_ENTROPY body (4).
    EXPECT_EQ(bytes.size(), 12u);
    Request back;
    std::string err;
    ASSERT_TRUE(decodeRequest(bytes.data(), bytes.size(), back, &err))
        << err;
    EXPECT_EQ(back, req);

    // Device id and request id compose: id first, then device.
    Request traced = req;
    traced.flags |= kFlagRequestId;
    traced.requestId = 0x1122334455667788ull;
    const auto tbytes = encodeRequest(traced);
    EXPECT_EQ(tbytes.size(), 20u);
    ASSERT_TRUE(
        decodeRequest(tbytes.data(), tbytes.size(), back, &err))
        << err;
    EXPECT_EQ(back, traced);

    // An unflagged frame of the same request is 4 bytes shorter.
    Request v2 = req;
    v2.flags = 0;
    v2.device = 0;
    EXPECT_EQ(encodeRequest(v2).size(), 8u);

    // A truncated device id must be rejected, not misread as a body.
    for (std::size_t cut = 5; cut < 12; ++cut) {
        Request junk;
        EXPECT_FALSE(decodeRequest(bytes.data(), cut, junk))
            << "cut=" << cut;
    }
}

TEST(ServiceProto, DeviceIdFlagRejectedWhereMeaningless)
{
    // The flag is a GET_ENTROPY extension only: PUF requests carry
    // the device unconditionally, HEALTH/STATS have no device, and
    // responses never carry one. A single canonical encoding per
    // message keeps encode(decode(x)) == x.
    for (const auto type : {MsgType::PufEnroll, MsgType::PufResponse,
                            MsgType::Health, MsgType::Stats}) {
        Request req = makeRequest(type, 5);
        req.flags |= kFlagDeviceId;
        const auto bytes = encodeRequest(req);
        Request back;
        std::string err;
        EXPECT_FALSE(
            decodeRequest(bytes.data(), bytes.size(), back, &err))
            << msgTypeName(type);
    }

    Response resp;
    resp.type = MsgType::GetEntropy;
    resp.seq = 3;
    resp.flags = kFlagDeviceId;
    resp.data = {1, 2};
    const auto rbytes = encodeResponse(resp);
    Response rback;
    std::string err;
    EXPECT_FALSE(
        decodeResponse(rbytes.data(), rbytes.size(), rback, &err));
}

TEST(ServiceProto, CapabilityStatusHasAName)
{
    EXPECT_STREQ(statusName(Status::Capability), "CAPABILITY");
}
