/**
 * @file
 * Known-answer tests for the from-scratch SHA-256 (FIPS 180-4
 * vectors).
 */

#include <gtest/gtest.h>

#include "common/sha256.hh"

using namespace fracdram;

namespace
{

std::string
hashHex(const std::string &msg)
{
    return Sha256::toHex(Sha256::hash(
        reinterpret_cast<const std::uint8_t *>(msg.data()),
        msg.size()));
}

} // namespace

TEST(Sha256Test, EmptyString)
{
    EXPECT_EQ(hashHex(""),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b"
              "7852b855");
}

TEST(Sha256Test, Abc)
{
    EXPECT_EQ(hashHex("abc"),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61"
              "f20015ad");
}

TEST(Sha256Test, TwoBlockMessage)
{
    EXPECT_EQ(hashHex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmno"
                      "mnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd4"
              "19db06c1");
}

TEST(Sha256Test, MillionAs)
{
    Sha256 h;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) {
        h.update(reinterpret_cast<const std::uint8_t *>(chunk.data()),
                 chunk.size());
    }
    EXPECT_EQ(Sha256::toHex(h.finish()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39cc"
              "c7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot)
{
    const std::string msg = "the quick brown fox jumps over the lazy "
                            "dog and keeps going for a while";
    Sha256 h;
    for (const char c : msg)
        h.update(reinterpret_cast<const std::uint8_t *>(&c), 1);
    EXPECT_EQ(Sha256::toHex(h.finish()), hashHex(msg));
}

TEST(Sha256Test, PaddingBoundaries)
{
    // Lengths around the 55/56/64-byte padding edges.
    for (const std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u}) {
        const std::string msg(len, 'x');
        Sha256 a;
        a.update(reinterpret_cast<const std::uint8_t *>(msg.data()),
                 len);
        Sha256 b;
        b.update(reinterpret_cast<const std::uint8_t *>(msg.data()),
                 len / 2);
        b.update(reinterpret_cast<const std::uint8_t *>(msg.data()) +
                     len / 2,
                 len - len / 2);
        EXPECT_EQ(Sha256::toHex(a.finish()), Sha256::toHex(b.finish()))
            << len;
    }
}

TEST(Sha256Test, HashBitsDistinct)
{
    BitVector a(100, false);
    BitVector b(100, false);
    b.set(99, true);
    EXPECT_NE(Sha256::toHex(Sha256::hashBits(a)),
              Sha256::toHex(Sha256::hashBits(b)));
}
