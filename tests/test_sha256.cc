/**
 * @file
 * Known-answer tests for the from-scratch SHA-256 (FIPS 180-4
 * vectors).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "common/sha256.hh"

using namespace fracdram;

namespace
{

std::string
hashHex(const std::string &msg)
{
    return Sha256::toHex(Sha256::hash(
        reinterpret_cast<const std::uint8_t *>(msg.data()),
        msg.size()));
}

} // namespace

TEST(Sha256Test, EmptyString)
{
    EXPECT_EQ(hashHex(""),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b"
              "7852b855");
}

TEST(Sha256Test, Abc)
{
    EXPECT_EQ(hashHex("abc"),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61"
              "f20015ad");
}

TEST(Sha256Test, TwoBlockMessage)
{
    EXPECT_EQ(hashHex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmno"
                      "mnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd4"
              "19db06c1");
}

TEST(Sha256Test, MillionAs)
{
    Sha256 h;
    const std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) {
        h.update(reinterpret_cast<const std::uint8_t *>(chunk.data()),
                 chunk.size());
    }
    EXPECT_EQ(Sha256::toHex(h.finish()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39cc"
              "c7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot)
{
    const std::string msg = "the quick brown fox jumps over the lazy "
                            "dog and keeps going for a while";
    Sha256 h;
    for (const char c : msg)
        h.update(reinterpret_cast<const std::uint8_t *>(&c), 1);
    EXPECT_EQ(Sha256::toHex(h.finish()), hashHex(msg));
}

TEST(Sha256Test, PaddingBoundaries)
{
    // Lengths around the 55/56/64-byte padding edges.
    for (const std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u}) {
        const std::string msg(len, 'x');
        Sha256 a;
        a.update(reinterpret_cast<const std::uint8_t *>(msg.data()),
                 len);
        Sha256 b;
        b.update(reinterpret_cast<const std::uint8_t *>(msg.data()),
                 len / 2);
        b.update(reinterpret_cast<const std::uint8_t *>(msg.data()) +
                     len / 2,
                 len - len / 2);
        EXPECT_EQ(Sha256::toHex(a.finish()), Sha256::toHex(b.finish()))
            << len;
    }
}

TEST(Sha256Test, HashBitsDistinct)
{
    BitVector a(100, false);
    BitVector b(100, false);
    b.set(99, true);
    EXPECT_NE(Sha256::toHex(Sha256::hashBits(a)),
              Sha256::toHex(Sha256::hashBits(b)));
}

namespace
{

/** Pre-pad a <=55-byte message into one final SHA-256 block. */
void
padSingleBlock(const std::uint8_t *msg, std::size_t len,
               std::uint8_t block[64])
{
    ASSERT_LE(len, 55u);
    std::memset(block, 0, 64);
    std::memcpy(block, msg, len);
    block[len] = 0x80;
    const std::uint64_t bits = len * 8;
    for (int i = 0; i < 8; ++i)
        block[56 + i] =
            static_cast<std::uint8_t>(bits >> (56 - 8 * i));
}

} // namespace

TEST(Sha256Test, HashSingleBlocksMatchesIncremental)
{
    // Batch sizes straddling the 8-way SIMD group width, message
    // lengths covering the whole single-block range. Every digest
    // must equal the ordinary incremental hash of the same message.
    std::mt19937_64 gen(0xb10cb10cULL);
    for (const std::size_t n :
         {std::size_t{1}, std::size_t{3}, std::size_t{7},
          std::size_t{8}, std::size_t{9}, std::size_t{16},
          std::size_t{20}, std::size_t{33}}) {
        std::vector<std::uint8_t> blocks(n * 64);
        std::vector<std::vector<std::uint8_t>> msgs(n);
        for (std::size_t b = 0; b < n; ++b) {
            msgs[b].resize((gen() % 56));
            for (auto &byte : msgs[b])
                byte = static_cast<std::uint8_t>(gen());
            padSingleBlock(msgs[b].data(), msgs[b].size(),
                           blocks.data() + 64 * b);
        }
        std::vector<Sha256::Digest> out(n);
        Sha256::hashSingleBlocks(blocks.data(), n, out.data());
        for (std::size_t b = 0; b < n; ++b)
            EXPECT_EQ(Sha256::toHex(out[b]),
                      Sha256::toHex(Sha256::hash(msgs[b].data(),
                                                 msgs[b].size())))
                << "batch " << n << " block " << b;
    }
}

TEST(Sha256Test, HashSingleBlocksDrbgShape)
{
    // The exact block shape Shard::refillPool builds: key || ctr_le,
    // 40 bytes.
    std::uint8_t msg[40];
    for (int i = 0; i < 32; ++i)
        msg[i] = static_cast<std::uint8_t>(i * 7 + 1);
    for (int c = 0; c < 8; ++c)
        msg[32 + c] = static_cast<std::uint8_t>(0x1234 >> (8 * c));
    std::uint8_t block[64];
    padSingleBlock(msg, sizeof(msg), block);
    Sha256::Digest out;
    Sha256::hashSingleBlocks(block, 1, &out);
    EXPECT_EQ(Sha256::toHex(out),
              Sha256::toHex(Sha256::hash(msg, sizeof(msg))));
}
