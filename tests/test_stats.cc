/**
 * @file
 * Unit tests for the statistics toolkit.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hh"

using namespace fracdram;

TEST(OnlineStats, Empty)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownValues)
{
    OnlineStats s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesSequential)
{
    OnlineStats a, b, all;
    for (int i = 0; i < 100; ++i) {
        const double x = std::sin(i * 0.7) * 3 + i * 0.01;
        (i < 40 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, CiShrinksWithSamples)
{
    OnlineStats small, large;
    for (int i = 0; i < 10; ++i)
        small.add(i % 3);
    for (int i = 0; i < 1000; ++i)
        large.add(i % 3);
    EXPECT_GT(small.ciHalfWidth(), large.ciHalfWidth());
}

TEST(Histogram, Bucketing)
{
    Histogram h({0.0, 1.0, 2.0});
    h.add(-0.5); // below first edge
    h.add(0.0);  // [0,1)
    h.add(0.9);
    h.add(1.5); // [1,2)
    h.add(2.0); // >= 2
    h.add(7.0);
    EXPECT_EQ(h.numBuckets(), 4u);
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.count(3), 2u);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_DOUBLE_EQ(h.fraction(1), 2.0 / 6.0);
}

TEST(Histogram, PdfSumsToOne)
{
    Histogram h({1.0, 2.0, 3.0});
    for (int i = 0; i < 50; ++i)
        h.add(i * 0.1);
    double sum = 0.0;
    for (const double f : h.pdf())
        sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(EmpiricalCdf, AtAndQuantile)
{
    EmpiricalCdf c;
    for (const double x : {1.0, 2.0, 3.0, 4.0})
        c.add(x);
    EXPECT_DOUBLE_EQ(c.at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(c.at(2.0), 0.5);
    EXPECT_DOUBLE_EQ(c.at(10.0), 1.0);
    EXPECT_DOUBLE_EQ(c.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(c.quantile(1.0), 4.0);
    EXPECT_DOUBLE_EQ(c.quantile(0.5), 2.5);
}

TEST(SpecialFunctions, IgamComplementarity)
{
    for (const double a : {0.5, 1.0, 2.5, 10.0}) {
        for (const double x : {0.1, 1.0, 5.0, 20.0}) {
            EXPECT_NEAR(igam(a, x) + igamc(a, x), 1.0, 1e-10)
                << "a=" << a << " x=" << x;
        }
    }
}

TEST(SpecialFunctions, IgamcKnownValues)
{
    // Q(1, x) = exp(-x).
    EXPECT_NEAR(igamc(1.0, 2.0), std::exp(-2.0), 1e-10);
    // Q(0.5, x) = erfc(sqrt(x)).
    EXPECT_NEAR(igamc(0.5, 1.44), std::erfc(1.2), 1e-10);
}

TEST(SpecialFunctions, NormalCdf)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.96), 0.975, 1e-3);
    EXPECT_NEAR(normalCdf(-1.96), 0.025, 1e-3);
}
