/**
 * @file
 * Unit tests for the text table printer.
 */

#include <gtest/gtest.h>

#include "common/table.hh"

using namespace fracdram;

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22222"), std::string::npos);
    // Separator line present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
    EXPECT_EQ(TextTable::pct(0.123, 1), "12.3%");
    EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}

TEST(TextTable, RowWidthMismatchDies)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}
