/**
 * @file
 * Tests of per-cell leakage characterization: the estimates must
 * rank-correlate with the simulator's ground-truth time constants.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/tau_estimate.hh"
#include "common/logging.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

using namespace fracdram;
using namespace fracdram::sim;
using namespace fracdram::softmc;
using namespace fracdram::analysis;

namespace
{

DramParams
tinyParams()
{
    DramParams p;
    p.numBanks = 1;
    p.subarraysPerBank = 1;
    p.rowsPerSubarray = 16;
    p.colsPerRow = 512;
    return p;
}

/** Spearman-style rank correlation over paired samples. */
double
rankCorrelation(const std::vector<double> &x,
                const std::vector<double> &y)
{
    const std::size_t n = x.size();
    auto ranks = [n](const std::vector<double> &v) {
        std::vector<std::size_t> idx(n);
        for (std::size_t i = 0; i < n; ++i)
            idx[i] = i;
        std::sort(idx.begin(), idx.end(),
                  [&v](std::size_t a, std::size_t b) {
                      return v[a] < v[b];
                  });
        std::vector<double> r(n);
        for (std::size_t i = 0; i < n; ++i)
            r[idx[i]] = static_cast<double>(i);
        return r;
    };
    const auto rx = ranks(x), ry = ranks(y);
    double d2 = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        d2 += (rx[i] - ry[i]) * (rx[i] - ry[i]);
    const double nn = static_cast<double>(n);
    return 1.0 - 6.0 * d2 / (nn * (nn * nn - 1.0));
}

} // namespace

TEST(TauEstimate, ResolvesASubstantialFraction)
{
    setVerbose(false);
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    const auto est = estimateCellTau(mc, 0, 4);
    ASSERT_EQ(est.tauSeconds.size(), 512u);
    // Cells with tau beyond the 12 h horizon stay unresolved; the
    // rest must be characterized.
    EXPECT_GT(est.resolvedCount(), 50u);
    EXPECT_LT(est.resolvedCount(), 512u);
}

TEST(TauEstimate, CorrelatesWithGroundTruth)
{
    setVerbose(false);
    DramChip chip(DramGroup::B, 2, tinyParams());
    MemoryController mc(chip, false);
    const auto est = estimateCellTau(mc, 0, 4);

    std::vector<double> measured, truth;
    for (ColAddr c = 0; c < 512; ++c) {
        if (!est.resolved[c])
            continue;
        measured.push_back(est.tauSeconds[c]);
        truth.push_back(chip.variation().cellTau(0, 4, c));
    }
    ASSERT_GT(measured.size(), 50u);
    EXPECT_GT(rankCorrelation(measured, truth), 0.5);
}

TEST(TauEstimate, EstimatesArePositiveAndFinite)
{
    setVerbose(false);
    DramChip chip(DramGroup::B, 3, tinyParams());
    MemoryController mc(chip, false);
    const auto est = estimateCellTau(mc, 0, 4);
    for (std::size_t c = 0; c < est.tauSeconds.size(); ++c) {
        if (est.resolved[c]) {
            EXPECT_GT(est.tauSeconds[c], 0.0);
            EXPECT_LT(est.tauSeconds[c], 1e9);
        }
    }
}

TEST(TauEstimate, RejectsCheckerGroups)
{
    setVerbose(false);
    DramChip chip(DramGroup::J, 1, tinyParams());
    MemoryController mc(chip, false);
    EXPECT_DEATH(estimateCellTau(mc, 0, 4), "Frac");
}

TEST(TauEstimate, EmptyLadderDies)
{
    setVerbose(false);
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    TauEstimateParams params;
    params.fracLadder.clear();
    EXPECT_DEATH(estimateCellTau(mc, 0, 4, params), "rung");
}
