/**
 * @file
 * Tests of the telemetry subsystem: the disabled path is a no-op,
 * thread-local shards merge to exact totals under any worker count,
 * snapshots are idempotent, histograms bucket by bit width, and the
 * Chrome trace writer emits schema-valid trace_event JSON plus the
 * run-report files (metrics.json / metrics.csv / trace.json).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "telemetry/metrics.hh"
#include "telemetry/report.hh"
#include "telemetry/trace.hh"

using namespace fracdram;
using namespace fracdram::telemetry;

namespace
{

struct Quiet
{
    Quiet() { setVerbose(false); }
} quiet;

/** Every test leaves telemetry off and the registry/trace empty. */
struct TelemetryGuard
{
    TelemetryGuard()
    {
        setEnabled(false);
        Metrics::instance().reset();
        resetTrace();
    }
    ~TelemetryGuard()
    {
        setEnabled(false);
        Metrics::instance().reset();
        resetTrace();
        parallel::setThreads(0);
    }
};

std::string
readFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    std::ostringstream out;
    out << f.rdbuf();
    return out.str();
}

std::size_t
countOccurrences(const std::string &hay, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = hay.find(needle);
         pos != std::string::npos; pos = hay.find(needle, pos + 1))
        ++n;
    return n;
}

TEST(TelemetryMetrics, InterningIsIdempotent)
{
    TelemetryGuard guard;
    auto &m = Metrics::instance();
    const auto a = m.counter("test.intern.a");
    const auto b = m.counter("test.intern.b");
    EXPECT_TRUE(a.valid());
    EXPECT_NE(a.index, b.index);
    EXPECT_EQ(a.index, m.counter("test.intern.a").index);
    EXPECT_EQ(m.histogram("test.intern.h").index,
              m.histogram("test.intern.h").index);
}

TEST(TelemetryMetrics, DisabledRecordingIsNoOp)
{
    TelemetryGuard guard;
    auto &m = Metrics::instance();
    const auto c = m.counter("test.disabled.c");
    const auto h = m.histogram("test.disabled.h");
    ASSERT_FALSE(enabled());
    count(c, 7);
    observe(h, 42);
    traceSpan("nope", 0, 1);
    {
        ScopedTimer timer(h);
        TraceSpan span("nope");
    }
    const auto snap = m.snapshot();
    EXPECT_EQ(snap.counters.at("test.disabled.c"), 0u);
    EXPECT_EQ(snap.histograms.at("test.disabled.h").count, 0u);
    EXPECT_EQ(traceEventCount(), 0u);
}

TEST(TelemetryMetrics, ShardsMergeExactlyUnderAnyWorkerCount)
{
    TelemetryGuard guard;
    auto &m = Metrics::instance();
    const auto c = m.counter("test.merge.c");
    const auto h = m.histogram("test.merge.h");
    constexpr std::size_t n = 1000;

    for (const unsigned workers : {1u, 2u, 8u}) {
        m.reset();
        setEnabled(true);
        parallel::setThreads(workers);
        parallel::parallelFor(n, [&](std::size_t i) {
            count(c);
            observe(h, static_cast<std::uint64_t>(i));
        });
        setEnabled(false);

        const auto snap = m.snapshot();
        EXPECT_EQ(snap.counters.at("test.merge.c"), n)
            << "workers=" << workers;
        const auto &hist = snap.histograms.at("test.merge.h");
        EXPECT_EQ(hist.count, n) << "workers=" << workers;
        EXPECT_EQ(hist.sum, n * (n - 1) / 2) << "workers=" << workers;
        EXPECT_EQ(hist.min, 0u);
        EXPECT_EQ(hist.max, n - 1);
    }
}

TEST(TelemetryMetrics, SnapshotIsIdempotent)
{
    TelemetryGuard guard;
    auto &m = Metrics::instance();
    const auto c = m.counter("test.idem.c");
    const auto h = m.histogram("test.idem.h");
    setEnabled(true);
    count(c, 3);
    observe(h, 17);
    observe(h, 4096);
    setEnabled(false);

    const auto s1 = m.snapshot();
    const auto s2 = m.snapshot();
    EXPECT_EQ(s1.counters, s2.counters);
    EXPECT_EQ(s1.gauges, s2.gauges);
    ASSERT_EQ(s1.histograms.size(), s2.histograms.size());
    for (const auto &[name, h1] : s1.histograms) {
        const auto &h2 = s2.histograms.at(name);
        EXPECT_EQ(h1.count, h2.count) << name;
        EXPECT_EQ(h1.sum, h2.sum) << name;
        EXPECT_EQ(h1.min, h2.min) << name;
        EXPECT_EQ(h1.max, h2.max) << name;
        EXPECT_EQ(h1.buckets, h2.buckets) << name;
    }
}

TEST(TelemetryMetrics, HistogramBucketsByBitWidth)
{
    TelemetryGuard guard;
    auto &m = Metrics::instance();
    const auto h = m.histogram("test.buckets.h");
    setEnabled(true);
    for (const std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 1024ull})
        observe(h, v);
    setEnabled(false);

    const auto snap = m.snapshot().histograms.at("test.buckets.h");
    ASSERT_EQ(snap.buckets.size(), 65u);
    EXPECT_EQ(snap.buckets[0], 1u);  // 0
    EXPECT_EQ(snap.buckets[1], 1u);  // 1
    EXPECT_EQ(snap.buckets[2], 2u);  // 2, 3
    EXPECT_EQ(snap.buckets[11], 1u); // 1024
    EXPECT_EQ(snap.count, 5u);
    EXPECT_EQ(snap.sum, 1030u);
    // Bucket-resolution quantiles report the bucket's upper bound at
    // rank floor((count-1) * q): with 5 samples p99 is the 4th value
    // (bucket of 3), the max lands in 1024's bucket (bound 2047).
    EXPECT_EQ(snap.quantile(0.99), 3u);
    EXPECT_GE(snap.quantile(1.0), 1024u);
    EXPECT_LE(snap.quantile(0.2), 1u);
}

TEST(TelemetryMetrics, GaugesHoldLastValue)
{
    TelemetryGuard guard;
    auto &m = Metrics::instance();
    const auto g = m.gauge("test.gauge");
    setEnabled(true);
    setGauge(g, 4);
    setGauge(g, -2);
    setEnabled(false);
    EXPECT_EQ(m.snapshot().gauges.at("test.gauge"), -2);
}

TEST(TelemetryTrace, ChromeTraceJsonSchema)
{
    TelemetryGuard guard;
    setEnabled(true);
    setThreadName("test-main");
    traceSpan("alpha span", nowNs(), 1500);
    traceInstant("beta instant");
    // Cycle domain: cycle 100 at 2.5 ns/cycle -> ts 0.250 us.
    traceCommand("ACT", 100, 1, /*lane=*/7);
    setEnabled(false);
    ASSERT_EQ(traceEventCount(), 3u);

    const std::string path =
        testing::TempDir() + "fracdram_trace_schema.json";
    ASSERT_TRUE(writeChromeTrace(path));
    const std::string json = readFile(path);
    std::remove(path.c_str());

    // JSON array format, balanced braces.
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json[json.find_last_not_of(" \n")], ']');
    EXPECT_EQ(countOccurrences(json, "{"),
              countOccurrences(json, "}"));

    // Both timelines are labeled for Perfetto.
    EXPECT_NE(json.find("\"name\":\"process_name\""),
              std::string::npos);
    EXPECT_NE(json.find("fracdram wall clock"), std::string::npos);
    EXPECT_NE(json.find("softmc command stream (2.5ns cycles)"),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"thread_name\""),
              std::string::npos);
    EXPECT_NE(json.find("test-main"), std::string::npos);

    // The three events with their phases and domains.
    EXPECT_NE(json.find("\"name\":\"alpha span\""),
              std::string::npos);
    EXPECT_NE(json.find("\"dur\":1.500"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\",\"pid\":2,\"tid\":7,"
                        "\"name\":\"ACT\",\"ts\":0.250"),
              std::string::npos);
}

TEST(TelemetryTrace, InternedNamesAreStable)
{
    TelemetryGuard guard;
    const char *a = internName("dynamic-label");
    const char *b = internName("dynamic-label");
    EXPECT_EQ(a, b);
    EXPECT_STREQ(a, "dynamic-label");
}

TEST(TelemetryReport, RunScopeWritesReports)
{
    TelemetryGuard guard;
    const std::string dir = testing::TempDir() + "fracdram_telem_run";
    {
        RunScope run("test_run", dir);
        ASSERT_TRUE(enabled());
        countNamed("test.report.counter", 5);
        TraceSpan span("report span");
    }
    const std::string json = readFile(dir + "/metrics.json");
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"test.report.counter\": 5"),
              std::string::npos);
    const std::string csv = readFile(dir + "/metrics.csv");
    EXPECT_NE(csv.find("kind,name,field,value"), std::string::npos);
    EXPECT_NE(csv.find("counter,test.report.counter,value,5"),
              std::string::npos);
    const std::string trace = readFile(dir + "/trace.json");
    EXPECT_NE(trace.find("\"name\":\"report span\""),
              std::string::npos);
    // RunScope leaves telemetry as configured; the guard resets it.
}

TEST(TelemetryReport, RendersEmptySnapshotAsValidJson)
{
    TelemetryGuard guard;
    const auto json = renderMetricsJson(MetricsSnapshot{});
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_EQ(countOccurrences(json, "{"),
              countOccurrences(json, "}"));
}

} // namespace
