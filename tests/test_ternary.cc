/**
 * @file
 * Tests of the ternary store (Half-m based, paper Sec. VI-C).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/ternary.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

using namespace fracdram;
using namespace fracdram::sim;
using namespace fracdram::softmc;
using namespace fracdram::core;

namespace
{

DramParams
tinyParams()
{
    DramParams p;
    p.numBanks = 1;
    p.subarraysPerBank = 1;
    p.rowsPerSubarray = 32;
    p.colsPerRow = 1024;
    return p;
}

} // namespace

class TernaryTest : public ::testing::Test
{
  protected:
    DramChip chip{DramGroup::B, 1, tinyParams()};
    MemoryController mc{chip, false};
    TernaryStore store{mc};
};

TEST_F(TernaryTest, ProfilingFindsMinorityOfColumns)
{
    store.profileColumns(2);
    EXPECT_TRUE(store.profiled());
    const double frac =
        static_cast<double>(store.capacityTrits()) / 1024.0;
    // Paper: ~16% of bits hold a distinguishable Half value; the
    // stability filter keeps a subset of those.
    EXPECT_GT(frac, 0.02);
    EXPECT_LT(frac, 0.35);
}

TEST_F(TernaryTest, RoundTripOnProfiledColumns)
{
    store.profileColumns(4);
    Rng rng(3);
    std::vector<int> trits(store.capacityTrits());
    for (auto &t : trits)
        t = static_cast<int>(rng.below(3));
    store.store(trits);
    const auto back = store.load();
    ASSERT_EQ(back.size(), trits.size());
    std::size_t ok = 0;
    for (std::size_t i = 0; i < trits.size(); ++i)
        ok += back[i] == trits[i];
    // The paper itself flags the readout as "not mature yet":
    // weak-margin columns stay flaky trial-to-trial, so profiling
    // cannot remove all of them. Expect clearly-better-than-chance
    // (chance = 1/3) with a solid majority correct.
    EXPECT_GT(static_cast<double>(ok) /
                  static_cast<double>(trits.size()),
              0.75);
}

TEST_F(TernaryTest, PartialPayload)
{
    store.profileColumns(1);
    const std::vector<int> trits = {2, 1, 0, 1, 2};
    store.store(trits);
    const auto back = store.load();
    ASSERT_EQ(back.size(), 5u);
    EXPECT_EQ(back[0], 2);
    EXPECT_EQ(back[2], 0);
    EXPECT_EQ(back[4], 2);
}

TEST_F(TernaryTest, LoadIsDestructive)
{
    store.profileColumns(1);
    store.store({1, 1});
    store.load();
    EXPECT_DEATH(store.load(), "nothing stored");
}

TEST_F(TernaryTest, UsageErrors)
{
    EXPECT_DEATH(store.store({1}), "profileColumns");
    store.profileColumns(1);
    std::vector<int> too_big(store.capacityTrits() + 1, 0);
    EXPECT_DEATH(store.store(too_big), "exceeds capacity");
}

TEST(TernaryValidation, RequiresThreeRowReadout)
{
    DramChip chip(DramGroup::C, 1, tinyParams());
    MemoryController mc(chip, false);
    EXPECT_DEATH(TernaryStore{mc}, "three-row");
}

TEST(TernaryValidation, RowCollisions)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    EXPECT_DEATH(TernaryStore(mc, 0, 8, 1, /*probe=*/8), "collides");
    EXPECT_DEATH(TernaryStore(mc, 0, 8, 1, 2, /*backup=*/6),
                 "collide");
}
