/**
 * @file
 * Metrics-history tests: ring wraparound, counter-delta correctness
 * against live registry snapshots, histogram window reduction, the
 * /history JSON shapes, and the process.* gauge sampler. The ring
 * reads the global registry, so each test records into uniquely named
 * metrics and drives sampleOnce() synchronously - no sampler thread.
 */

#include <gtest/gtest.h>

#include "telemetry/procstats.hh"
#include "telemetry/timeseries.hh"

using namespace fracdram;
using telemetry::HistoryConfig;
using telemetry::Metrics;
using telemetry::MetricsHistory;

namespace
{

HistoryConfig
testConfig(std::size_t capacity)
{
    HistoryConfig cfg;
    cfg.resolutionMs = 10;
    cfg.capacityPoints = capacity;
    cfg.sampleProcess = false; // keep test points deterministic
    return cfg;
}

} // namespace

TEST(MetricsHistory, FirstSampleIsBaselineOnly)
{
    telemetry::setEnabled(true);
    const auto id = Metrics::instance().counter("test.ts.baseline");
    Metrics::instance().add(id, 1000); // pre-history lifetime total

    MetricsHistory hist(testConfig(8));
    hist.sampleOnce();
    EXPECT_EQ(hist.size(), 0u) << "baseline must record no point";
    EXPECT_EQ(hist.totalSamples(), 0u);

    Metrics::instance().add(id, 7);
    hist.sampleOnce();
    ASSERT_EQ(hist.size(), 1u);
    const auto pts = hist.lastN(1);
    ASSERT_EQ(pts.size(), 1u);
    // The pre-existing 1000 was absorbed by the baseline; the point
    // holds only what happened inside the tick.
    EXPECT_EQ(pts[0].counterDeltas.at("test.ts.baseline"), 7u);
}

TEST(MetricsHistory, CounterDeltasPerTick)
{
    telemetry::setEnabled(true);
    const auto id = Metrics::instance().counter("test.ts.delta");
    MetricsHistory hist(testConfig(8));
    hist.sampleOnce();

    const std::uint64_t adds[] = {5, 0, 12};
    for (const std::uint64_t n : adds) {
        if (n)
            Metrics::instance().add(id, n);
        hist.sampleOnce();
    }
    const auto pts = hist.lastN(3);
    ASSERT_EQ(pts.size(), 3u);
    EXPECT_EQ(pts[0].counterDeltas.at("test.ts.delta"), 5u);
    EXPECT_EQ(pts[1].counterDeltas.at("test.ts.delta"), 0u);
    EXPECT_EQ(pts[2].counterDeltas.at("test.ts.delta"), 12u);
}

TEST(MetricsHistory, RingWrapsKeepingNewest)
{
    telemetry::setEnabled(true);
    const auto id = Metrics::instance().counter("test.ts.wrap");
    MetricsHistory hist(testConfig(4));
    hist.sampleOnce();

    // 10 points through a 4-slot ring: deltas 1..10.
    for (std::uint64_t i = 1; i <= 10; ++i) {
        Metrics::instance().add(id, i);
        hist.sampleOnce();
    }
    EXPECT_EQ(hist.size(), 4u);
    EXPECT_EQ(hist.totalSamples(), 10u);

    const auto pts = hist.lastN(100); // over-ask clamps to resident
    ASSERT_EQ(pts.size(), 4u);
    // Oldest-first: the survivors are the last four ticks.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(pts[i].counterDeltas.at("test.ts.wrap"), 7u + i);

    const auto two = hist.lastN(2);
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0].counterDeltas.at("test.ts.wrap"), 9u);
    EXPECT_EQ(two[1].counterDeltas.at("test.ts.wrap"), 10u);
}

TEST(MetricsHistory, GaugeAndHistogramWindowing)
{
    telemetry::setEnabled(true);
    const auto g = Metrics::instance().gauge("test.ts.gauge");
    const auto h = Metrics::instance().histogram("test.ts.hist");

    MetricsHistory hist(testConfig(8));
    Metrics::instance().observe(h, 100); // absorbed by baseline
    hist.sampleOnce();

    Metrics::instance().set(g, -42);
    for (int i = 0; i < 10; ++i)
        Metrics::instance().observe(h, 1000);
    hist.sampleOnce();

    Metrics::instance().set(g, 5);
    hist.sampleOnce(); // no histogram traffic this tick

    const auto pts = hist.lastN(2);
    ASSERT_EQ(pts.size(), 2u);
    EXPECT_EQ(pts[0].gauges.at("test.ts.gauge"), -42);
    const auto &st = pts[0].histograms.at("test.ts.hist");
    EXPECT_EQ(st.count, 10u) << "baseline sample must not leak in";
    EXPECT_EQ(st.sum, 10'000u);
    EXPECT_GE(st.p50, 512u); // bucket upper bound of 1000
    EXPECT_LE(st.p99, 1023u + 1);

    EXPECT_EQ(pts[1].gauges.at("test.ts.gauge"), 5);
    EXPECT_EQ(pts[1].histograms.at("test.ts.hist").count, 0u)
        << "an idle tick is an explicit zero point, not a gap";
}

TEST(MetricsHistory, QueryJsonShapes)
{
    telemetry::setEnabled(true);
    const auto id = Metrics::instance().counter("test.ts.query");
    MetricsHistory hist(testConfig(8));
    hist.sampleOnce();
    Metrics::instance().add(id, 3);
    hist.sampleOnce();

    const std::string json = hist.queryJson("test.ts.query", 10);
    EXPECT_NE(json.find("\"metric\":\"test.ts.query\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
    EXPECT_NE(json.find("\"resolution_ms\":10"), std::string::npos);
    EXPECT_NE(json.find("\"value\":3"), std::string::npos);

    // Unknown metric: still 200-shaped, kind "none", no points.
    const std::string none = hist.queryJson("no.such.metric", 10);
    EXPECT_NE(none.find("\"kind\":\"none\""), std::string::npos);
    EXPECT_NE(none.find("\"points\":[]"), std::string::npos);

    EXPECT_NE(hist.namesJson().find("\"test.ts.query\""),
              std::string::npos);
}

TEST(MetricsHistory, EmptyWindowQuery)
{
    telemetry::setEnabled(true);
    MetricsHistory hist(testConfig(8));
    // No samples at all: every query is well-formed and empty.
    const std::string json = hist.queryJson("anything", 5);
    EXPECT_NE(json.find("\"kind\":\"none\""), std::string::npos);
    EXPECT_NE(json.find("\"points\":[]"), std::string::npos);
    EXPECT_EQ(hist.namesJson(), "{\"metrics\":[]}\n");
    EXPECT_NE(hist.renderAllJson("", 5).find("\"series\":{}"),
              std::string::npos);
}

TEST(MetricsHistory, RenderAllFiltersByPrefix)
{
    telemetry::setEnabled(true);
    const auto a = Metrics::instance().counter("test.tsall.keep");
    const auto b = Metrics::instance().counter("other.tsall.drop");
    MetricsHistory hist(testConfig(8));
    hist.sampleOnce();
    Metrics::instance().add(a, 1);
    Metrics::instance().add(b, 1);
    hist.sampleOnce();

    const std::string all = hist.renderAllJson("test.tsall.", 10);
    EXPECT_NE(all.find("\"test.tsall.keep\""), std::string::npos)
        << all;
    EXPECT_EQ(all.find("other.tsall.drop"), std::string::npos) << all;
}

TEST(MetricsHistory, StartStopIsIdempotent)
{
    telemetry::setEnabled(true);
    auto cfg = testConfig(16);
    cfg.resolutionMs = 5;
    MetricsHistory hist(cfg);
    hist.start();
    hist.start(); // no second thread
    hist.stop();
    hist.stop();
    hist.start();
    // Destructor stops the restarted thread.
}

TEST(ProcStats, GaugesArePlausible)
{
    telemetry::setEnabled(true);
    const auto st = telemetry::sampleProcessGauges();
    EXPECT_GT(st.rssBytes, 0);
    // ru_maxrss and /proc/self/statm use different accounting, so
    // only sanity-check the peak, don't order it against current.
    EXPECT_GT(st.peakRssBytes, 0);
    EXPECT_GE(st.openFds, 3); // stdin/stdout/stderr at minimum
    EXPECT_GE(st.uptimeMs, 0);

    const auto snap = Metrics::instance().snapshot();
    EXPECT_EQ(snap.gauges.at("process.rss_bytes"), st.rssBytes);
    EXPECT_EQ(snap.gauges.at("process.open_fds"), st.openFds);
    EXPECT_TRUE(snap.gauges.count("process.cpu_user_ms"));
    EXPECT_TRUE(snap.gauges.count("process.cpu_sys_ms"));
    EXPECT_TRUE(snap.gauges.count("process.uptime_ms"));
    EXPECT_TRUE(snap.gauges.count("process.peak_rss_bytes"));
}
