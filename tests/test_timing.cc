/**
 * @file
 * Unit tests for the JEDEC timing checker: compliant flows pass, and
 * each FracDRAM primitive is flagged with the violation it relies on.
 */

#include <gtest/gtest.h>

#include "core/frac_op.hh"
#include "core/multi_row.hh"
#include "core/rowclone.hh"
#include "softmc/timing.hh"

using namespace fracdram;
using namespace fracdram::softmc;

namespace
{

bool
hasViolation(const std::vector<TimingViolation> &v, const char *what)
{
    for (const auto &x : v)
        if (x.what.find(what) != std::string::npos)
            return true;
    return false;
}

} // namespace

TEST(TimingSpec, CompliantReadFlowPasses)
{
    const TimingSpec spec = TimingSpec::ddr3();
    CommandSequence seq;
    seq.act(0, 3);
    seq.idle(spec.tRcd - 1);
    seq.read(0);
    seq.idle(spec.tRas); // generous
    seq.pre(0);
    seq.idle(spec.tRp);
    EXPECT_TRUE(spec.check(seq, 8).empty());
}

TEST(TimingSpec, FracSequenceViolatesTRas)
{
    const TimingSpec spec = TimingSpec::ddr3();
    const auto seq = core::buildFracSequence(0, 3, 1);
    const auto v = spec.check(seq, 8);
    EXPECT_FALSE(v.empty());
    EXPECT_TRUE(hasViolation(v, "tRAS"));
}

TEST(TimingSpec, MultiRowSequenceViolatesTRasAndTRp)
{
    const TimingSpec spec = TimingSpec::ddr3();
    const auto seq = core::buildMultiRowSequence(0, 1, 2, false);
    const auto v = spec.check(seq, 8);
    EXPECT_TRUE(hasViolation(v, "tRAS"));
    EXPECT_TRUE(hasViolation(v, "tRP"));
}

TEST(TimingSpec, RowCopySequenceViolatesTiming)
{
    const TimingSpec spec = TimingSpec::ddr3();
    const auto seq = core::buildRowCopySequence(0, 10, 11);
    EXPECT_FALSE(spec.check(seq, 8).empty());
}

TEST(TimingSpec, ActOnOpenBankFlagged)
{
    const TimingSpec spec = TimingSpec::ddr3();
    CommandSequence seq;
    seq.act(0, 1);
    seq.idle(30);
    seq.act(0, 2); // no PRE in between
    const auto v = spec.check(seq, 8);
    EXPECT_TRUE(hasViolation(v, "open bank"));
}

TEST(TimingSpec, ReadOnClosedBankFlagged)
{
    const TimingSpec spec = TimingSpec::ddr3();
    CommandSequence seq;
    seq.read(2);
    EXPECT_TRUE(hasViolation(spec.check(seq, 8), "closed bank"));
}

TEST(TimingSpec, EarlyReadViolatesTRcd)
{
    const TimingSpec spec = TimingSpec::ddr3();
    CommandSequence seq;
    seq.act(0, 1);
    seq.read(0); // one cycle after ACT
    EXPECT_TRUE(hasViolation(spec.check(seq, 8), "tRCD"));
}

TEST(TimingSpec, BadBankFlagged)
{
    const TimingSpec spec = TimingSpec::ddr3();
    CommandSequence seq;
    seq.act(9, 1);
    EXPECT_TRUE(hasViolation(spec.check(seq, 8), "bad bank"));
}

TEST(TimingSpec, RefreshWithOpenBankFlagged)
{
    const TimingSpec spec = TimingSpec::ddr3();
    CommandSequence seq;
    seq.act(0, 1);
    seq.idle(30);
    seq.refresh();
    EXPECT_TRUE(hasViolation(spec.check(seq, 8), "REFRESH"));
}

TEST(TimingSpec, BackToBackActsOnDifferentBanksViolateTRrd)
{
    const TimingSpec spec = TimingSpec::ddr3();
    CommandSequence seq;
    seq.act(0, 1);
    seq.act(1, 1);
    EXPECT_TRUE(hasViolation(spec.check(seq, 8), "tRRD"));
}
