/**
 * @file
 * Tests of the QUAC-style TRNG.
 */

#include <gtest/gtest.h>

#include "puf/nist.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"
#include "trng/quac_trng.hh"

using namespace fracdram;
using namespace fracdram::sim;
using namespace fracdram::softmc;
using namespace fracdram::trng;

namespace
{

DramParams
tinyParams()
{
    DramParams p;
    p.numBanks = 1;
    p.subarraysPerBank = 1;
    p.rowsPerSubarray = 32;
    p.colsPerRow = 512;
    return p;
}

} // namespace

TEST(QuacTrngTest, RequiresFourRowActivation)
{
    DramChip chip(DramGroup::E, 1, tinyParams());
    MemoryController mc(chip, false);
    EXPECT_DEATH(QuacTrng{mc}, "four-row");
}

TEST(QuacTrngTest, RawSamplesVaryAcrossTrials)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    QuacTrng gen(mc);
    const auto a = gen.rawSample();
    const auto b = gen.rawSample();
    // Deterministic columns repeat; metastable ones flip - the
    // samples must be neither identical nor uncorrelated.
    const auto hd = a.hammingDistance(b);
    EXPECT_GT(hd, 0u);
    EXPECT_LT(hd, a.size() / 4);
}

TEST(QuacTrngTest, GeneratesRequestedBits)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    QuacTrng gen(mc);
    const auto bits = gen.generate(1000);
    EXPECT_EQ(bits.size(), 1000u);
    EXPECT_GT(gen.rawSamplesUsed(), 0u);
    EXPECT_GT(gen.throughputMbps(), 0.0);
}

TEST(QuacTrngTest, OutputBalanced)
{
    DramChip chip(DramGroup::B, 2, tinyParams());
    MemoryController mc(chip, false);
    QuacTrng gen(mc);
    const auto bits = gen.generate(20000);
    EXPECT_NEAR(bits.hammingWeight(), 0.5, 0.02);
    EXPECT_TRUE(puf::nist::frequency(bits).passed());
    EXPECT_TRUE(puf::nist::runs(bits).passed());
}

TEST(QuacTrngTest, ConditioningBlockSizing)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    QuacTrng gen(mc);
    EXPECT_EQ(gen.samplesPerBlock(), 128u); // 512 / 4
    gen.setAssumedEntropyPerSample(8.0);
    EXPECT_EQ(gen.samplesPerBlock(), 64u);
    EXPECT_DEATH(gen.setAssumedEntropyPerSample(0.0), "positive");
}

TEST(QuacTrngTest, CycleModelSane)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    QuacTrng gen(mc);
    // init copies + activation + readout.
    EXPECT_GT(gen.cyclesPerSample(), 72u);
    EXPECT_LT(gen.cyclesPerSample(), 200u);
}

TEST(QuacTrngTest, WorksOnDdr4Group)
{
    DramChip chip(DramGroup::M, 1, DramParams::ddr4());
    MemoryController mc(chip, false);
    QuacTrng gen(mc);
    const auto bits = gen.generate(512);
    EXPECT_EQ(bits.size(), 512u);
}
