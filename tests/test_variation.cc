/**
 * @file
 * Unit tests for the deterministic process-variation map.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "sim/variation.hh"
#include "sim/vendor.hh"

using namespace fracdram;
using namespace fracdram::sim;

namespace
{

const VendorProfile &profileB()
{
    return vendorProfile(DramGroup::B);
}

} // namespace

TEST(VariationMap, Deterministic)
{
    VariationMap a(profileB(), 7), b(profileB(), 7);
    for (ColAddr c = 0; c < 50; ++c) {
        EXPECT_DOUBLE_EQ(a.cellAlpha(0, 3, c), b.cellAlpha(0, 3, c));
        EXPECT_DOUBLE_EQ(a.cellTau(0, 3, c), b.cellTau(0, 3, c));
        EXPECT_DOUBLE_EQ(a.saOffset(1, c), b.saOffset(1, c));
        EXPECT_EQ(a.startupBit(2, 5, c), b.startupBit(2, 5, c));
    }
}

TEST(VariationMap, DifferentSerialsDifferentSilicon)
{
    VariationMap a(profileB(), 1), b(profileB(), 2);
    int same = 0;
    const int n = 200;
    for (ColAddr c = 0; c < n; ++c)
        same += a.startupBit(0, 0, c) == b.startupBit(0, 0, c);
    // Independent fair bits agree about half the time.
    EXPECT_GT(same, n / 4);
    EXPECT_LT(same, 3 * n / 4);
}

TEST(VariationMap, AlphaInUnitInterval)
{
    VariationMap v(profileB(), 3);
    for (ColAddr c = 0; c < 500; ++c) {
        const double a = v.cellAlpha(0, 0, c);
        EXPECT_GT(a, 0.0);
        EXPECT_LT(a, 1.0);
    }
}

TEST(VariationMap, SlowCellFractionRoughlyMatchesProfile)
{
    VariationMap v(profileB(), 5);
    int slow = 0;
    const int n = 5000;
    for (ColAddr c = 0; c < n; ++c)
        slow += v.cellIsSlow(0, 0, c);
    EXPECT_NEAR(static_cast<double>(slow) / n,
                profileB().slowCellFraction, 0.03);
}

TEST(VariationMap, SlowCellsSettleSlowlyAndLeakSlowly)
{
    VariationMap v(profileB(), 11);
    OnlineStats slow_alpha, fast_alpha, slow_tau, fast_tau;
    for (ColAddr c = 0; c < 4000; ++c) {
        if (v.cellIsSlow(0, 0, c)) {
            slow_alpha.add(v.cellAlpha(0, 0, c));
            slow_tau.add(v.cellTau(0, 0, c));
        } else {
            fast_alpha.add(v.cellAlpha(0, 0, c));
            fast_tau.add(v.cellTau(0, 0, c));
        }
    }
    EXPECT_LT(slow_alpha.mean(), 0.1);
    EXPECT_GT(fast_alpha.mean(), 0.4);
    EXPECT_GT(slow_tau.mean(), fast_tau.mean());
}

TEST(VariationMap, SaOffsetMomentsMatchProfile)
{
    VariationMap v(profileB(), 13);
    OnlineStats s;
    for (ColAddr c = 0; c < 20000; ++c)
        s.add(v.saOffset(0, c));
    EXPECT_NEAR(s.mean(), profileB().saOffsetMean,
                3.0 * profileB().saOffsetSigma / std::sqrt(20000.0) +
                    1e-5);
    EXPECT_NEAR(s.stddev(), profileB().saOffsetSigma,
                0.1 * profileB().saOffsetSigma);
}

TEST(VariationMap, CouplingMedianNearOne)
{
    VariationMap v(profileB(), 17);
    int above = 0;
    const int n = 5000;
    for (ColAddr c = 0; c < n; ++c)
        above += v.cellCoupling(0, 1, c) > 1.0;
    EXPECT_NEAR(static_cast<double>(above) / n, 0.5, 0.03);
}

TEST(VariationMap, HalfCleanFraction)
{
    VariationMap v(profileB(), 19);
    int clean = 0;
    const int n = 10000;
    for (ColAddr c = 0; c < n; ++c)
        clean += v.halfMClean(0, c);
    EXPECT_NEAR(static_cast<double>(clean) / n,
                profileB().halfMCleanFraction, 0.02);
}

TEST(VariationMap, VrtRare)
{
    VariationMap v(profileB(), 23);
    int vrt = 0;
    const int n = 20000;
    for (ColAddr c = 0; c < n; ++c)
        vrt += v.cellIsVrt(0, 0, c);
    EXPECT_LT(static_cast<double>(vrt) / n,
              4.0 * profileB().vrtFraction + 1e-3);
}

TEST(VariationMap, TauMedianRoughlyMatchesProfile)
{
    VariationMap v(profileB(), 29);
    std::vector<double> taus;
    for (ColAddr c = 0; c < 4001; ++c) {
        if (!v.cellIsSlow(0, 0, c))
            taus.push_back(v.cellTau(0, 0, c));
    }
    std::nth_element(taus.begin(), taus.begin() + taus.size() / 2,
                     taus.end());
    const double median_h = taus[taus.size() / 2] / 3600.0;
    EXPECT_NEAR(median_h, profileB().tauMedianHours,
                0.2 * profileB().tauMedianHours);
}
