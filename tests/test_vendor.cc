/**
 * @file
 * Unit tests for the vendor-group profiles: the capability flags must
 * copy the paper's Table I exactly.
 */

#include <gtest/gtest.h>

#include "sim/vendor.hh"

using namespace fracdram::sim;

TEST(Vendor, TwelveGroups)
{
    EXPECT_EQ(allGroups().size(), 12u);
    EXPECT_EQ(groupName(DramGroup::A), "A");
    EXPECT_EQ(groupName(DramGroup::L), "L");
}

TEST(Vendor, TableICapabilities)
{
    struct Expect
    {
        DramGroup g;
        bool frac, three, four;
    };
    const Expect table[] = {
        {DramGroup::A, true, false, false},
        {DramGroup::B, true, true, true},
        {DramGroup::C, true, false, true},
        {DramGroup::D, true, false, true},
        {DramGroup::E, true, false, false},
        {DramGroup::F, true, false, false},
        {DramGroup::G, true, false, false},
        {DramGroup::H, true, false, false},
        {DramGroup::I, true, false, false},
        {DramGroup::J, false, false, false},
        {DramGroup::K, false, false, false},
        {DramGroup::L, false, false, false},
    };
    for (const auto &e : table) {
        const auto &p = vendorProfile(e.g);
        EXPECT_EQ(p.supportsFrac, e.frac) << groupName(e.g);
        EXPECT_EQ(p.supportsThreeRow, e.three) << groupName(e.g);
        EXPECT_EQ(p.supportsFourRow, e.four) << groupName(e.g);
    }
}

TEST(Vendor, TableIChipCounts)
{
    EXPECT_EQ(vendorProfile(DramGroup::A).numChips, 16);
    EXPECT_EQ(vendorProfile(DramGroup::B).numChips, 80);
    EXPECT_EQ(vendorProfile(DramGroup::C).numChips, 160);
    EXPECT_EQ(vendorProfile(DramGroup::D).numChips, 16);
    EXPECT_EQ(vendorProfile(DramGroup::E).numChips, 32);
    EXPECT_EQ(vendorProfile(DramGroup::F).numChips, 48);
    EXPECT_EQ(vendorProfile(DramGroup::G).numChips, 32);
    EXPECT_EQ(vendorProfile(DramGroup::H).numChips, 32);
    EXPECT_EQ(vendorProfile(DramGroup::I).numChips, 32);
    EXPECT_EQ(vendorProfile(DramGroup::J).numChips, 16);
    EXPECT_EQ(vendorProfile(DramGroup::K).numChips, 32);
    EXPECT_EQ(vendorProfile(DramGroup::L).numChips, 32);
    // 582 chips are *cited*; Table I itself lists 528.
    int total = 0;
    for (const auto g : allGroups())
        total += vendorProfile(g).numChips;
    EXPECT_EQ(total, 528);
}

TEST(Vendor, TableIVendorsAndFrequencies)
{
    EXPECT_EQ(vendorProfile(DramGroup::A).vendor, "SK Hynix");
    EXPECT_EQ(vendorProfile(DramGroup::E).vendor, "Samsung");
    EXPECT_EQ(vendorProfile(DramGroup::H).vendor, "TimeTec");
    EXPECT_EQ(vendorProfile(DramGroup::I).vendor, "Corsair");
    EXPECT_EQ(vendorProfile(DramGroup::J).vendor, "Micron");
    EXPECT_EQ(vendorProfile(DramGroup::K).vendor, "Elpida");
    EXPECT_EQ(vendorProfile(DramGroup::L).vendor, "Nanya");
    EXPECT_EQ(vendorProfile(DramGroup::A).freqMhz, 1066);
    EXPECT_EQ(vendorProfile(DramGroup::D).freqMhz, 1600);
}

TEST(Vendor, TimingCheckersAreJKL)
{
    for (const auto g : allGroups()) {
        const bool checker = vendorProfile(g).ignoresOutOfSpecTiming;
        const bool is_jkl = g == DramGroup::J || g == DramGroup::K ||
                            g == DramGroup::L;
        EXPECT_EQ(checker, is_jkl) << groupName(g);
    }
}

TEST(Vendor, CapableGroupHelpers)
{
    EXPECT_EQ(fracCapableGroups().size(), 9u);
    const auto four = fourRowCapableGroups();
    ASSERT_EQ(four.size(), 3u);
    EXPECT_EQ(four[0], DramGroup::B);
    EXPECT_EQ(four[1], DramGroup::C);
    EXPECT_EQ(four[2], DramGroup::D);
}

TEST(Vendor, RoleWeightsDistinct)
{
    // The multi-row-capable groups must have a dominant "primary"
    // row - it drives both the MAJ3 error story and the best F-MAJ
    // configuration.
    const auto &b = vendorProfile(DramGroup::B);
    EXPECT_GT(b.roleWeight(RowRole::SecondAct),
              b.roleWeight(RowRole::FirstAct));
    const auto &c = vendorProfile(DramGroup::C);
    EXPECT_GT(c.roleWeight(RowRole::FirstAct),
              c.roleWeight(RowRole::SecondAct));
    const auto &d = vendorProfile(DramGroup::D);
    EXPECT_GT(d.roleWeight(RowRole::ImplicitOther),
              d.roleWeight(RowRole::FirstAct));
}

TEST(Vendor, ModuleCounts)
{
    // One module is eight x8 chips.
    for (const auto g : allGroups()) {
        const auto &p = vendorProfile(g);
        EXPECT_EQ(p.numModules, p.numChips / 8) << groupName(g);
        EXPECT_GE(p.numModules, 2) << groupName(g);
    }
}
