/**
 * @file
 * Tests of the MAJ3-based fractional-value verification procedure
 * (paper Sec. IV-B2).
 */

#include <gtest/gtest.h>

#include "core/verify.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"

using namespace fracdram;
using namespace fracdram::sim;
using namespace fracdram::softmc;
using namespace fracdram::core;

namespace
{

DramParams
tinyParams()
{
    DramParams p;
    p.numBanks = 1;
    p.subarraysPerBank = 1;
    p.rowsPerSubarray = 32;
    p.colsPerRow = 512;
    return p;
}

} // namespace

TEST(FracVerifyResult, ComboMath)
{
    FracVerifyResult r;
    r.x1 = BitVector::fromString("1100");
    r.x2 = BitVector::fromString("1010");
    // columns: (1,1) (1,0) (0,1) (0,0)
    const auto combos = r.comboFractions();
    EXPECT_DOUBLE_EQ(combos[0], 0.25);
    EXPECT_DOUBLE_EQ(combos[1], 0.25);
    EXPECT_DOUBLE_EQ(combos[2], 0.25);
    EXPECT_DOUBLE_EQ(combos[3], 0.25);
    EXPECT_EQ(r.provenFractional().toString(), "0100");
    EXPECT_DOUBLE_EQ(r.provenFraction(), 0.25);
}

TEST(Maj3FracProbe, NoFracsMeansNoProof)
{
    // Without Frac the "fractional" rows hold rails: both probes
    // return the stored value; nothing is proven fractional.
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    const auto r = maj3FracProbe(mc, 0, 1, 2, {1u, 2u}, 0,
                                 /*num_fracs=*/0,
                                 /*frac_init_ones=*/true);
    EXPECT_LT(r.provenFraction(), 0.05);
    EXPECT_GT(r.x1.hammingWeight(), 0.95);
    EXPECT_GT(r.x2.hammingWeight(), 0.95);
}

TEST(Maj3FracProbe, TwoFracsProveFractionalAlmostEverywhere)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    const auto r = maj3FracProbe(mc, 0, 1, 2, {1u, 2u}, 0, 2, true);
    EXPECT_GT(r.provenFraction(), 0.9);
}

TEST(Maj3FracProbe, WorksFromZerosInit)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    const auto zero_base =
        maj3FracProbe(mc, 0, 1, 2, {1u, 2u}, 0, 0, false);
    EXPECT_LT(zero_base.x1.hammingWeight(), 0.05);
    const auto r = maj3FracProbe(mc, 0, 1, 2, {1u, 2u}, 0, 3, false);
    EXPECT_GT(r.provenFraction(), 0.9);
}

TEST(Maj3FracProbe, AlternateFracRowsR1R3)
{
    // The paper's configurations (c)/(d): fractional values in R1 and
    // R3, probe in R2.
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    const auto r = maj3FracProbe(mc, 0, 1, 2, {1u, 0u}, 2, 3, true);
    EXPECT_GT(r.provenFraction(), 0.85);
}

TEST(Maj3FracProbe, NothingProvenOnTimingCheckerChips)
{
    // Groups J-L: Frac has no effect, the probes return the stored
    // rail values.
    DramChip chip(DramGroup::J, 1, tinyParams());
    MemoryController mc(chip, false);
    const auto r = maj3FracProbe(mc, 0, 1, 2, {1u, 2u}, 0, 5, true);
    EXPECT_LT(r.provenFraction(), 0.05);
}

TEST(Maj3FracProbe, RequiresFracRows)
{
    DramChip chip(DramGroup::B, 1, tinyParams());
    MemoryController mc(chip, false);
    EXPECT_DEATH(maj3FracProbe(mc, 0, 1, 2, {}, 0, 1, true),
                 "fractional row");
}
