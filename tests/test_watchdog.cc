/**
 * @file
 * SLO watchdog tests. The watchdog reads the global metrics
 * registry, so each test records synthetic latencies into its own
 * uniquely named histogram and drives evaluation windows
 * synchronously through sampleOnce() - no sampling thread, no
 * timing dependence.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "service/watchdog.hh"

using namespace fracdram;
using service::Watchdog;
using service::WatchdogConfig;
using telemetry::Metrics;

namespace
{

WatchdogConfig
testConfig(const std::string &hist_name)
{
    WatchdogConfig cfg;
    cfg.sloP99Us = 100; // breach when windowed p99 > 100 us
    cfg.breachWindows = 2;
    cfg.clearWindows = 2;
    cfg.latencyHistogram = hist_name;
    return cfg;
}

void
recordWindow(telemetry::HistogramId id, std::uint64_t latency_ns,
             int n = 100)
{
    for (int i = 0; i < n; ++i)
        Metrics::instance().observe(id, latency_ns);
}

} // namespace

TEST(Watchdog, BreachFlipsHealthAndDrainRecovers)
{
    telemetry::setEnabled(true);
    const auto id =
        Metrics::instance().histogram("test.watchdog.breach");
    Watchdog wd(testConfig("test.watchdog.breach"));

    wd.sampleOnce(); // prime: empty window, healthy
    EXPECT_TRUE(wd.healthy());

    recordWindow(id, 50'000'000); // 50 ms, far over the 100 us SLO
    wd.sampleOnce();
    EXPECT_TRUE(wd.healthy()) << "one bad window must not flip";
    EXPECT_EQ(wd.breachedWindows(), 1u);

    recordWindow(id, 50'000'000);
    wd.sampleOnce();
    EXPECT_FALSE(wd.healthy())
        << "two consecutive bad windows must flip";
    EXPECT_EQ(wd.flips(), 1u);
    EXPECT_EQ(wd.breachedWindows(), 2u);
    EXPECT_GT(wd.lastP99Us(), 100u);

    // Drain: idle windows count as good, so health restores after
    // clearWindows of silence.
    wd.sampleOnce();
    EXPECT_FALSE(wd.healthy()) << "one good window must not restore";
    wd.sampleOnce();
    EXPECT_TRUE(wd.healthy());
    EXPECT_EQ(wd.flips(), 1u);
    EXPECT_EQ(wd.breachedWindows(), 2u) << "idle windows don't burn";
}

TEST(Watchdog, AlternatingBreachesNeverFlip)
{
    telemetry::setEnabled(true);
    const auto id =
        Metrics::instance().histogram("test.watchdog.flap");
    Watchdog wd(testConfig("test.watchdog.flap"));
    wd.sampleOnce();
    for (int round = 0; round < 4; ++round) {
        recordWindow(id, 50'000'000);
        wd.sampleOnce();
        recordWindow(id, 10'000); // 10 us: comfortably inside
        wd.sampleOnce();
    }
    EXPECT_TRUE(wd.healthy());
    EXPECT_EQ(wd.flips(), 0u);
    EXPECT_EQ(wd.breachedWindows(), 4u)
        << "every bad window still burns error budget";
}

TEST(Watchdog, FastTrafficStaysHealthy)
{
    telemetry::setEnabled(true);
    const auto id =
        Metrics::instance().histogram("test.watchdog.fast");
    Watchdog wd(testConfig("test.watchdog.fast"));
    wd.sampleOnce();
    for (int w = 0; w < 5; ++w) {
        recordWindow(id, 10'000);
        wd.sampleOnce();
    }
    EXPECT_TRUE(wd.healthy());
    EXPECT_EQ(wd.breachedWindows(), 0u);
    EXPECT_LE(wd.lastP99Us(), 100u);
}

TEST(Watchdog, ZeroSloNeverFlips)
{
    telemetry::setEnabled(true);
    const auto id =
        Metrics::instance().histogram("test.watchdog.noslo");
    auto cfg = testConfig("test.watchdog.noslo");
    cfg.sloP99Us = 0;
    Watchdog wd(cfg);
    wd.sampleOnce();
    for (int w = 0; w < 3; ++w) {
        recordWindow(id, 1'000'000'000); // a full second
        wd.sampleOnce();
    }
    EXPECT_TRUE(wd.healthy());
    EXPECT_EQ(wd.breachedWindows(), 0u);
}

TEST(Watchdog, WindowingSeesOnlyNewSamples)
{
    telemetry::setEnabled(true);
    const auto id =
        Metrics::instance().histogram("test.watchdog.window");
    Watchdog wd(testConfig("test.watchdog.window"));
    // A pile of terrible latencies recorded BEFORE the first sample
    // must not poison later windows: the first sampleOnce() absorbs
    // them as the baseline.
    recordWindow(id, 60'000'000'000ull);
    wd.sampleOnce();
    recordWindow(id, 10'000);
    wd.sampleOnce();
    recordWindow(id, 10'000);
    wd.sampleOnce();
    EXPECT_TRUE(wd.healthy());
    EXPECT_EQ(wd.breachedWindows(), 0u);
}

TEST(Watchdog, StartStopIsIdempotent)
{
    telemetry::setEnabled(true);
    auto cfg = testConfig("test.watchdog.thread");
    cfg.intervalMs = 10;
    Watchdog wd(cfg);
    wd.start();
    wd.start(); // second start is a no-op, not a second thread
    wd.stop();
    wd.stop();
    wd.start();
    // Destructor stops the restarted thread.
}

// ---------------------------------------------------------------------
// Reactor-stall detection: the watchdog scans service.reactorN.*
// gauges, so these tests publish heartbeat/phase by hand and drive
// sampleOnce() - a real frozen loop is exercised by smoke_forensics.
// The gauges are process-global and outlive each Watchdog, so every
// assertion about "which reactor stalled" filters the incident text
// by index instead of assuming a pristine registry.
// ---------------------------------------------------------------------

namespace
{

struct IncidentLog
{
    std::vector<std::pair<std::string, std::string>> events;

    WatchdogConfig
    stallConfig(int stall_intervals)
    {
        WatchdogConfig cfg;
        cfg.sloP99Us = 0; // stall detection must not need an SLO
        cfg.stallIntervals = stall_intervals;
        cfg.latencyHistogram = "test.watchdog.stall.unused";
        cfg.onIncident = [this](const std::string &reason,
                                const std::string &detail) {
            events.emplace_back(reason, detail);
        };
        return cfg;
    }
};

} // namespace

TEST(Watchdog, StallFiresOnEdgeAndRecovers)
{
    telemetry::setEnabled(true);
    auto &m = Metrics::instance();
    const auto hb = m.gauge("service.reactor0.heartbeat");
    const auto ph = m.gauge("service.reactor0.phase");
    m.set(hb, 10);
    m.set(ph, 1); // ReactorPhase::Accept

    IncidentLog log;
    Watchdog wd(log.stallConfig(3));
    wd.sampleOnce(); // baseline observation of reactor 0
    EXPECT_EQ(wd.stallEvents(), 0u);

    wd.sampleOnce(); // frozen x1
    wd.sampleOnce(); // frozen x2
    EXPECT_EQ(wd.stallEvents(), 0u)
        << "must not fire before stallIntervals frozen samples";
    wd.sampleOnce(); // frozen x3: the edge
    EXPECT_EQ(wd.stallEvents(), 1u);
    EXPECT_EQ(wd.stalledReactors(), 1u);
    ASSERT_EQ(log.events.size(), 1u);
    EXPECT_EQ(log.events[0].first, "reactor_stall");
    EXPECT_NE(log.events[0].second.find("reactor 0 stalled"),
              std::string::npos)
        << log.events[0].second;
    EXPECT_NE(log.events[0].second.find("phase 'accept'"),
              std::string::npos)
        << log.events[0].second;
    EXPECT_TRUE(wd.healthy()) << "a stall never flips /healthz";

    wd.sampleOnce(); // still frozen: edge-only, no second incident
    EXPECT_EQ(wd.stallEvents(), 1u);
    EXPECT_EQ(log.events.size(), 1u);

    m.set(hb, 11); // the loop moves again
    wd.sampleOnce();
    EXPECT_EQ(wd.stalledReactors(), 0u);
    EXPECT_EQ(wd.stallEvents(), 1u) << "recovery is not an incident";
}

TEST(Watchdog, AdvancingHeartbeatNeverStalls)
{
    telemetry::setEnabled(true);
    auto &m = Metrics::instance();
    const auto hb0 = m.gauge("service.reactor0.heartbeat");
    const auto hb1 = m.gauge("service.reactor1.heartbeat");

    IncidentLog log;
    Watchdog wd(log.stallConfig(2));
    for (std::int64_t i = 0; i < 6; ++i) {
        m.set(hb0, 100 + i);
        m.set(hb1, 200 + i * 7);
        wd.sampleOnce();
    }
    EXPECT_EQ(wd.stallEvents(), 0u);
    EXPECT_EQ(wd.stalledReactors(), 0u);
    EXPECT_TRUE(log.events.empty());
}

TEST(Watchdog, ZeroStallIntervalsDisablesDetector)
{
    telemetry::setEnabled(true);
    auto &m = Metrics::instance();
    const auto hb = m.gauge("service.reactor2.heartbeat");
    m.set(hb, 5); // then frozen forever

    IncidentLog log;
    Watchdog wd(log.stallConfig(0));
    for (int i = 0; i < 6; ++i)
        wd.sampleOnce();
    EXPECT_EQ(wd.stallEvents(), 0u);
    EXPECT_EQ(wd.stalledReactors(), 0u);
    EXPECT_TRUE(log.events.empty());
}
