/**
 * @file
 * fracdram - command-line explorer for the FracDRAM library.
 *
 * Subcommands:
 *   info                         list the vendor groups
 *   capability  [--group X]     probe a module behaviourally
 *   frac        [--group X] [--fracs N]
 *                               voltage trace + fractional readout
 *   maj         [--group X]     in-memory majority coverage
 *   puf         [--group X] [--challenges N]
 *                               PUF quick statistics
 *   trng        [--group X] [--bits N]
 *                               emit random bits (hex)
 *   retention   [--group X] [--fracs N]
 *                               retention-bucket histogram
 *   decoder     [--group X]     reverse-engineer the row decoder
 *
 * Every subcommand accepts --serial N (module serial, default 1),
 * --threads N (parallel trial engine workers; 0 = auto-detect, also
 * settable via the FRACDRAM_THREADS environment variable), and
 * --telemetry-out DIR (write metrics.json / metrics.csv / trace.json
 * run reports into DIR; also settable via FRACDRAM_TELEMETRY).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>

#include "analysis/capability.hh"
#include "analysis/reverse.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/frac_op.hh"
#include "core/fracdram.hh"
#include "core/retention.hh"
#include "puf/hamming.hh"
#include "puf/puf.hh"
#include "sim/chip.hh"
#include "softmc/controller.hh"
#include "telemetry/report.hh"
#include "trng/quac_trng.hh"

using namespace fracdram;

namespace
{

struct Options
{
    sim::DramGroup group = sim::DramGroup::B;
    std::uint64_t serial = 1;
    int fracs = 5;
    int challenges = 8;
    std::size_t bits = 256;
    unsigned threads = 0;     //!< 0 = auto (env var / hardware)
    std::string telemetryOut; //!< run-report directory ("" = env)
};

sim::DramGroup
parseGroup(const std::string &name)
{
    if (name.size() == 1 && name[0] >= 'A' && name[0] <= 'N')
        return static_cast<sim::DramGroup>(name[0] - 'A');
    fatal("unknown group '%s' (expected A-N)", name.c_str());
}

Options
parseOptions(int argc, char **argv, int first)
{
    Options opt;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            fatal_if(i + 1 >= argc, "missing value for %s",
                     arg.c_str());
            return argv[++i];
        };
        if (arg == "--group")
            opt.group = parseGroup(next());
        else if (arg == "--serial")
            opt.serial = std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--fracs")
            opt.fracs = std::atoi(next().c_str());
        else if (arg == "--challenges")
            opt.challenges = std::atoi(next().c_str());
        else if (arg == "--bits")
            opt.bits = std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--threads")
            opt.threads = static_cast<unsigned>(
                std::strtoul(next().c_str(), nullptr, 10));
        else if (arg == "--telemetry-out")
            opt.telemetryOut = next();
        else
            fatal("unknown option '%s'", arg.c_str());
    }
    return opt;
}

sim::DramParams
paramsFor(sim::DramGroup g)
{
    sim::DramParams p =
        sim::isDdr4(g) ? sim::DramParams::ddr4() : sim::DramParams{};
    p.colsPerRow = 2048;
    return p;
}

int
cmdInfo()
{
    TextTable table({"group", "vendor", "standard", "freq", "frac",
                     "3-row", "4-row"});
    auto add_row = [&table](sim::DramGroup g) {
        const auto &p = sim::vendorProfile(g);
        auto mark = [](bool b) { return b ? std::string("yes") : ""; };
        table.addRow({sim::groupName(g), p.vendor,
                      sim::isDdr4(g) ? "DDR4" : "DDR3",
                      std::to_string(p.freqMhz), mark(p.supportsFrac),
                      mark(p.supportsThreeRow),
                      mark(p.supportsFourRow)});
    };
    for (const auto g : sim::allGroups())
        add_row(g);
    for (const auto g : sim::ddr4Groups())
        add_row(g);
    table.print();
    return 0;
}

int
cmdCapability(const Options &opt)
{
    sim::DramChip chip(opt.group, opt.serial, paramsFor(opt.group));
    softmc::MemoryController mc(chip, false);
    const auto cap = analysis::probeCapability(mc);
    std::printf("group %s module (serial %llu):\n",
                sim::groupName(opt.group).c_str(),
                static_cast<unsigned long long>(opt.serial));
    std::printf("  Frac                 %s\n", cap.frac ? "yes" : "no");
    std::printf("  three-row activation %s\n",
                cap.threeRow ? "yes" : "no");
    std::printf("  four-row activation  %s\n",
                cap.fourRow ? "yes" : "no");
    return 0;
}

int
cmdFrac(const Options &opt)
{
    sim::DramChip chip(opt.group, opt.serial, paramsFor(opt.group));
    softmc::MemoryController mc(chip, false);
    mc.fillRowVoltage(0, 4, true);
    TextTable table({"#Frac", "mean cell voltage", "readout weight"});
    for (int n = 0; n <= opt.fracs; ++n) {
        if (n > 0) {
            mc.fillRowVoltage(0, 4, true);
            core::frac(mc, 0, 4, n);
        }
        OnlineStats v;
        for (ColAddr c = 0; c < chip.dramParams().colsPerRow; ++c)
            v.add(chip.bank(0).cellVoltage(4, c));
        // Non-destructive peek at the weight via a fresh preparation.
        mc.fillRowVoltage(0, 4, true);
        if (n > 0)
            core::frac(mc, 0, 4, n);
        const double weight =
            mc.readRowVoltage(0, 4).hammingWeight();
        table.addRow({std::to_string(n),
                      TextTable::num(v.mean(), 3) + " V",
                      TextTable::pct(weight, 1)});
    }
    table.print();
    return 0;
}

int
cmdMaj(const Options &opt)
{
    core::FracDram dram(opt.group, opt.serial, paramsFor(opt.group));
    if (!dram.canMajority()) {
        std::printf("group %s supports no in-memory majority\n",
                    sim::groupName(opt.group).c_str());
        return 1;
    }
    const std::size_t cols = dram.chip().dramParams().colsPerRow;
    const bool combos[6][3] = {
        {1, 0, 0}, {0, 1, 0}, {0, 0, 1},
        {0, 1, 1}, {1, 0, 1}, {1, 1, 0},
    };
    TextTable table({"inputs", "expected", "correct columns"});
    for (const auto &combo : combos) {
        const std::array<BitVector, 3> ops = {
            BitVector(cols, combo[0]), BitVector(cols, combo[1]),
            BitVector(cols, combo[2])};
        const bool expected =
            static_cast<int>(combo[0]) + combo[1] + combo[2] >= 2;
        const auto result = dram.majority(0, ops);
        std::size_t ok = 0;
        for (std::size_t c = 0; c < cols; ++c)
            ok += result.get(c) == expected;
        table.addRow({strprintf("{%d,%d,%d}", combo[0], combo[1],
                                combo[2]),
                      expected ? "1" : "0",
                      TextTable::pct(static_cast<double>(ok) /
                                         static_cast<double>(cols),
                                     1)});
    }
    std::printf("in-memory majority via %s:\n",
                dram.canThreeRowActivate() ? "three-row MAJ3"
                                           : "F-MAJ");
    table.print();
    return 0;
}

int
cmdPuf(const Options &opt)
{
    sim::DramChip chip(opt.group, opt.serial, paramsFor(opt.group));
    softmc::MemoryController mc(chip, false);
    puf::FracPuf device_puf(mc, 10);
    const auto challenges = device_puf.makeChallenges(
        static_cast<std::size_t>(opt.challenges));
    const auto set1 = device_puf.evaluateAll(challenges);
    const auto set2 = device_puf.evaluateAll(challenges);

    sim::DramChip other(opt.group, opt.serial + 1,
                        paramsFor(opt.group));
    softmc::MemoryController mc2(other, false);
    puf::FracPuf puf2(mc2, 10);
    const auto set3 = puf2.evaluateAll(challenges);

    OnlineStats intra, inter, weight;
    for (std::size_t i = 0; i < challenges.size(); ++i) {
        intra.add(puf::normalizedHammingDistance(set1[i], set2[i]));
        inter.add(puf::normalizedHammingDistance(set1[i], set3[i]));
        weight.add(set1[i].hammingWeight());
    }
    std::printf("group %s Frac-PUF over %d challenges:\n",
                sim::groupName(opt.group).c_str(), opt.challenges);
    std::printf("  hamming weight  %.3f\n", weight.mean());
    std::printf("  intra-HD        %.3f (max %.3f)\n", intra.mean(),
                intra.max());
    std::printf("  inter-HD        %.3f (min %.3f)\n", inter.mean(),
                inter.min());
    std::printf("  evaluation      %.2f us\n",
                static_cast<double>(device_puf.evaluationCycles()) *
                    memCycleNs / 1000.0);
    return 0;
}

int
cmdTrng(const Options &opt)
{
    sim::DramChip chip(opt.group, opt.serial, paramsFor(opt.group));
    softmc::MemoryController mc(chip, false);
    trng::QuacTrng gen(mc);
    const auto bits = gen.generate(opt.bits);
    for (std::size_t i = 0; i < bits.size(); i += 8) {
        unsigned byte = 0;
        for (std::size_t b = 0; b < 8 && i + b < bits.size(); ++b)
            byte |= static_cast<unsigned>(bits.get(i + b)) << b;
        std::printf("%02x", byte);
    }
    std::printf("\n");
    std::fprintf(stderr, "# %zu bits, %zu raw samples, %.1f Mb/s\n",
                 bits.size(), gen.rawSamplesUsed(),
                 gen.throughputMbps());
    return 0;
}

int
cmdRetention(const Options &opt)
{
    sim::DramChip chip(opt.group, opt.serial, paramsFor(opt.group));
    softmc::MemoryController mc(chip, false);
    core::RetentionProfiler profiler(mc, 0, 4);
    const auto buckets = profiler.profile([&] {
        mc.fillRowVoltage(0, 4, true);
        if (opt.fracs > 0)
            core::frac(mc, 0, 4, opt.fracs);
    });
    std::vector<std::size_t> counts(
        core::RetentionBuckets::numBuckets(), 0);
    for (const auto b : buckets)
        ++counts[b];
    TextTable table({"bucket", "cells"});
    for (std::size_t b = counts.size(); b-- > 0;) {
        table.addRow({core::RetentionBuckets::label(b),
                      TextTable::pct(static_cast<double>(counts[b]) /
                                         static_cast<double>(
                                             buckets.size()),
                                     1)});
    }
    std::printf("retention profile after %d Frac(s), group %s:\n",
                opt.fracs, sim::groupName(opt.group).c_str());
    table.print();
    return 0;
}

int
cmdDecoder(const Options &opt)
{
    sim::DramChip chip(opt.group, opt.serial, paramsFor(opt.group));
    softmc::MemoryController mc(chip, false);
    const auto model = analysis::reverseEngineerDecoder(mc, 16);
    std::printf("row-decoder reverse engineering, group %s:\n",
                sim::groupName(opt.group).c_str());
    std::printf("  max opened rows     %zu\n", model.maxOpenedRows);
    std::printf("  three-row sets      %s\n",
                model.hasThreeRowSets ? "yes" : "no");
    std::printf("  power-of-two only   %s\n",
                model.powerOfTwoOnly ? "yes" : "no");
    std::printf("  glitch window bits  %d\n",
                model.inferredWindowBits);
    TextTable table({"addr distance", "opened-set sizes seen"});
    for (const auto &[dist, sizes] : model.sizesByDistance) {
        std::set<std::size_t> unique(sizes.begin(), sizes.end());
        std::string s;
        for (const auto n : unique)
            s += std::to_string(n) + " ";
        table.addRow({std::to_string(dist), s});
    }
    table.print();
    return 0;
}

void
usage()
{
    std::puts(
        "usage: fracdram <command> [options]\n"
        "commands: info capability frac maj puf trng retention "
        "decoder\n"
        "options:  --group A..N  --serial N  --fracs N  "
        "--challenges N  --bits N  --threads N (0 = auto; also "
        "FRACDRAM_THREADS)\n"
        "          --telemetry-out DIR (write metrics.json / "
        "metrics.csv / trace.json; also FRACDRAM_TELEMETRY)");
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string cmd = argv[1];
    const Options opt = parseOptions(argc, argv, 2);
    parallel::setThreads(opt.threads);
    telemetry::RunScope telem("fracdram_" + cmd, opt.telemetryOut);
    if (cmd == "info")
        return cmdInfo();
    if (cmd == "capability")
        return cmdCapability(opt);
    if (cmd == "frac")
        return cmdFrac(opt);
    if (cmd == "maj")
        return cmdMaj(opt);
    if (cmd == "puf")
        return cmdPuf(opt);
    if (cmd == "trng")
        return cmdTrng(opt);
    if (cmd == "retention")
        return cmdRetention(opt);
    if (cmd == "decoder")
        return cmdDecoder(opt);
    usage();
    return 2;
}
