/**
 * @file
 * fracdram_loadgen - closed-loop load generator for fracdram_serve.
 *
 * Opens --conns connections, keeps a window of --window pipelined
 * GET_ENTROPY requests outstanding on each, and runs for --duration
 * seconds. Prints throughput and client-observed p50/p95/p99 latency
 * (and writes them as one JSON object with --json-out, which
 * scripts/run_benches.sh embeds into the bench record).
 *
 * Options:
 *   --host H          server address (default 127.0.0.1)
 *   --port N          server port (required)
 *   --conns N         connections (default 4)
 *   --window N        outstanding requests per connection (default 16)
 *   --duration S      measured run length in seconds (default 2)
 *   --warmup-ms N     samples before this are discarded (default 200)
 *   --bytes N         entropy bytes per request (default 32)
 *   --raw             request the raw QUAC stream (slow; exercises
 *                     backpressure rather than throughput)
 *   --trace           tag every request with a unique request id
 *                     (kFlagRequestId) so the daemon records
 *                     per-stage timelines for it; dump them with
 *                     /varz?trace=N on the daemon's metrics port
 *   --check-health    just fetch HEALTH, print it, exit 0/1
 *   --json-out FILE   write the summary as one JSON line; includes
 *                     the server-side latency histograms fetched via
 *                     STATS after the run under the "server" key
 *   --quiet           suppress the human-readable table
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "service/client.hh"

using namespace fracdram;
using Clock = std::chrono::steady_clock;

namespace
{

struct Options
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    int conns = 4;
    int window = 16;
    double duration = 2.0;
    int warmupMs = 200;
    std::uint32_t bytes = 32;
    bool raw = false;
    bool trace = false;
    bool checkHealth = false;
    std::string jsonOut;
    bool quiet = false;
};

/** What one connection thread measured. */
struct WorkerResult
{
    std::vector<double> latenciesUs;
    std::uint64_t ok = 0;
    std::uint64_t busy = 0;
    std::uint64_t rateLimited = 0;
    std::uint64_t errors = 0;
    std::string firstError;
};

void
runWorker(const Options &opt, int worker,
          Clock::time_point warmup_end, Clock::time_point deadline,
          WorkerResult &result)
{
    service::Client client;
    std::string err;
    if (!client.connect(opt.host, opt.port, &err)) {
        ++result.errors;
        result.firstError = err;
        return;
    }
    service::Request req;
    req.type = service::MsgType::GetEntropy;
    req.flags = opt.raw ? service::kFlagRawEntropy : 0;
    if (opt.trace)
        req.flags |= service::kFlagRequestId;
    req.nBytes = opt.bytes;
    // Run-unique ids: the worker index in the top bits, a per-worker
    // counter below.
    std::uint64_t next_id =
        static_cast<std::uint64_t>(worker + 1) << 32;

    std::deque<Clock::time_point> in_flight;
    result.latenciesUs.reserve(1 << 16);
    std::uint16_t seq = 0;

    auto send_one = [&]() -> bool {
        req.seq = ++seq;
        if (opt.trace)
            req.requestId = ++next_id;
        if (!client.send(req, &err)) {
            ++result.errors;
            if (result.firstError.empty())
                result.firstError = err;
            return false;
        }
        in_flight.push_back(Clock::now());
        return true;
    };

    for (int i = 0; i < opt.window; ++i)
        if (!send_one())
            return;

    service::Response resp;
    while (!in_flight.empty()) {
        const bool more = Clock::now() < deadline;
        if (!client.recv(resp, &err, 5000)) {
            ++result.errors;
            if (result.firstError.empty())
                result.firstError = err;
            break;
        }
        const auto now = Clock::now();
        const auto sent = in_flight.front();
        in_flight.pop_front();
        switch (resp.status) {
        case service::Status::Ok:
            ++result.ok;
            if (sent >= warmup_end)
                result.latenciesUs.push_back(
                    std::chrono::duration<double, std::micro>(now -
                                                              sent)
                        .count());
            break;
        case service::Status::Busy:
            ++result.busy;
            break;
        case service::Status::RateLimited:
            ++result.rateLimited;
            break;
        case service::Status::Error:
            ++result.errors;
            if (result.firstError.empty())
                result.firstError = resp.text;
            break;
        }
        if (more && !send_one())
            break;
    }
    client.close();
}

/**
 * Pull one `"name": {...}` object out of a JSON blob by brace
 * matching - enough to lift a histogram summary out of STATS without
 * a JSON parser.
 */
std::string
extractJsonObject(const std::string &json, const std::string &name)
{
    const std::string key = "\"" + name + "\": {";
    const std::size_t at = json.find(key);
    if (at == std::string::npos)
        return "";
    const std::size_t open = at + key.size() - 1;
    int depth = 0;
    for (std::size_t j = open; j < json.size(); ++j) {
        if (json[j] == '{')
            ++depth;
        else if (json[j] == '}' && --depth == 0)
            return json.substr(open, j - open + 1);
    }
    return "";
}

/**
 * Fetch STATS after the run and summarize the server-side view of
 * the same traffic: the end-to-end request histogram plus the two
 * stages the daemon controls (queue wait, write batching).
 * @return "" when the server or its telemetry is unavailable
 */
std::string
fetchServerSummary(const Options &opt)
{
    service::Client client;
    std::string err, stats;
    if (!client.connect(opt.host, opt.port, &err) ||
        !client.stats(stats, &err))
        return "";
    static const char *const kHistograms[] = {
        "service.request_ns",
        "service.queue_wait_ns",
        "service.write_batch_frames",
        "service.batch_bits",
    };
    std::string out = "{";
    bool first = true;
    for (const char *name : kHistograms) {
        const std::string obj = extractJsonObject(stats, name);
        if (obj.empty())
            continue;
        out += first ? "" : ", ";
        first = false;
        out += "\"" + std::string(name) + "\": " + obj;
    }
    out += "}";
    return first ? "" : out;
}

double
percentile(std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
    return sorted[rank];
}

int
checkHealth(const Options &opt)
{
    service::Client client;
    std::string err, json;
    if (!client.connect(opt.host, opt.port, &err) ||
        !client.health(json, &err)) {
        std::fprintf(stderr, "health check failed: %s\n",
                     err.c_str());
        return 1;
    }
    std::printf("%s\n", json.c_str());
    return json.find("\"status\"") != std::string::npos ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            fatal_if(i + 1 >= argc, "missing value for %s",
                     arg.c_str());
            return argv[++i];
        };
        if (arg == "--host")
            opt.host = next();
        else if (arg == "--port")
            opt.port = static_cast<std::uint16_t>(
                std::strtoul(next().c_str(), nullptr, 10));
        else if (arg == "--conns")
            opt.conns = std::atoi(next().c_str());
        else if (arg == "--window")
            opt.window = std::atoi(next().c_str());
        else if (arg == "--duration")
            opt.duration = std::atof(next().c_str());
        else if (arg == "--warmup-ms")
            opt.warmupMs = std::atoi(next().c_str());
        else if (arg == "--bytes")
            opt.bytes = static_cast<std::uint32_t>(
                std::strtoul(next().c_str(), nullptr, 10));
        else if (arg == "--raw")
            opt.raw = true;
        else if (arg == "--trace")
            opt.trace = true;
        else if (arg == "--check-health")
            opt.checkHealth = true;
        else if (arg == "--json-out")
            opt.jsonOut = next();
        else if (arg == "--quiet")
            opt.quiet = true;
        else
            fatal("unknown option '%s'", arg.c_str());
    }
    fatal_if(opt.port == 0, "--port is required");
    fatal_if(opt.conns < 1 || opt.window < 1,
             "--conns and --window must be at least 1");

    if (opt.checkHealth)
        return checkHealth(opt);

    const auto start = Clock::now();
    const auto warmup_end =
        start + std::chrono::milliseconds(opt.warmupMs);
    const auto deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(opt.duration));

    std::vector<WorkerResult> results(
        static_cast<std::size_t>(opt.conns));
    std::vector<std::thread> threads;
    threads.reserve(results.size());
    for (int w = 0; w < opt.conns; ++w)
        threads.emplace_back(runWorker, std::cref(opt), w,
                             warmup_end, deadline,
                             std::ref(results[static_cast<
                                 std::size_t>(w)]));
    for (auto &t : threads)
        t.join();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();

    WorkerResult total;
    for (auto &r : results) {
        total.ok += r.ok;
        total.busy += r.busy;
        total.rateLimited += r.rateLimited;
        total.errors += r.errors;
        if (total.firstError.empty())
            total.firstError = r.firstError;
        total.latenciesUs.insert(total.latenciesUs.end(),
                                 r.latenciesUs.begin(),
                                 r.latenciesUs.end());
    }
    std::sort(total.latenciesUs.begin(), total.latenciesUs.end());
    const double rps =
        elapsed > 0.0 ? static_cast<double>(total.ok) / elapsed : 0.0;
    const double p50 = percentile(total.latenciesUs, 0.50);
    const double p95 = percentile(total.latenciesUs, 0.95);
    const double p99 = percentile(total.latenciesUs, 0.99);

    if (!opt.quiet) {
        std::printf("loadgen: %d conns x window %d, %u bytes/req%s, "
                    "%.1f s\n",
                    opt.conns, opt.window, opt.bytes,
                    opt.raw ? " (raw)" : "", elapsed);
        std::printf("  ok %llu  busy %llu  rate_limited %llu  "
                    "errors %llu\n",
                    static_cast<unsigned long long>(total.ok),
                    static_cast<unsigned long long>(total.busy),
                    static_cast<unsigned long long>(total.rateLimited),
                    static_cast<unsigned long long>(total.errors));
        std::printf("  throughput %.0f req/s\n", rps);
        std::printf("  latency p50 %.1f us  p95 %.1f us  "
                    "p99 %.1f us  (%zu samples)\n",
                    p50, p95, p99, total.latenciesUs.size());
        if (!total.firstError.empty())
            std::printf("  first error: %s\n",
                        total.firstError.c_str());
    }

    const std::string server = fetchServerSummary(opt);
    const std::string json = strprintf(
        "{\"conns\": %d, \"window\": %d, \"bytes_per_req\": %u, "
        "\"raw\": %s, \"traced\": %s, \"seconds\": %.3f, "
        "\"ok\": %llu, \"busy\": %llu, \"rate_limited\": %llu, "
        "\"errors\": %llu, \"requests_per_sec\": %.1f, "
        "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f, "
        "\"server\": %s}",
        opt.conns, opt.window, opt.bytes,
        opt.raw ? "true" : "false", opt.trace ? "true" : "false",
        elapsed, static_cast<unsigned long long>(total.ok),
        static_cast<unsigned long long>(total.busy),
        static_cast<unsigned long long>(total.rateLimited),
        static_cast<unsigned long long>(total.errors), rps, p50, p95,
        p99, server.empty() ? "null" : server.c_str());
    if (!opt.jsonOut.empty()) {
        std::FILE *f = std::fopen(opt.jsonOut.c_str(), "w");
        fatal_if(f == nullptr, "cannot write '%s'",
                 opt.jsonOut.c_str());
        std::fprintf(f, "%s\n", json.c_str());
        std::fclose(f);
    } else if (opt.quiet) {
        std::printf("%s\n", json.c_str());
    }

    return total.errors == 0 && total.ok > 0 ? 0 : 1;
}
