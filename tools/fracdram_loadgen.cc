/**
 * @file
 * fracdram_loadgen - closed-loop load generator for fracdram_serve.
 *
 * Opens --conns connections spread over --threads generator threads
 * (each thread poll-multiplexes its slice over non-blocking sockets
 * and replaces a batch of completed requests with one write, so the
 * client side stays ahead of a multi-reactor server without a thread
 * per connection). Keeps a window of --window pipelined GET_ENTROPY
 * requests outstanding on each connection and runs for --duration
 * seconds. Prints throughput and client-observed p50/p95/p99 latency
 * plus a merged power-of-two latency histogram (and writes them as
 * one JSON object with --json-out, which scripts/run_benches.sh
 * embeds into the bench record). The JSON also carries a per-second
 * "timeline" array (req/s + bucket-bound p99 per elapsed second) so
 * ramp-up, steady state and any mid-run stall are visible after the
 * fact, not just the end-of-run aggregates.
 *
 * Options:
 *   --host H          server address (default 127.0.0.1)
 *   --port N          server port (required)
 *   --conns N         connections (default 4)
 *   --threads N       generator threads (default: half the cores,
 *                     clamped to [1, conns])
 *   --window N        outstanding requests per connection (default 16)
 *   --duration S      measured run length in seconds (default 2)
 *   --warmup-ms N     samples before this are discarded (default 200)
 *   --bytes N         entropy bytes per request (default 32)
 *   --raw             request the raw QUAC stream (slow; exercises
 *                     backpressure rather than throughput)
 *   --trace           tag every request with a unique request id
 *                     (kFlagRequestId) so the daemon records
 *                     per-stage timelines for it; dump them with
 *                     /varz?trace=N on the daemon's metrics port
 *   --check-health    just fetch HEALTH, print it, exit 0/1
 *
 * Fleet mode (fracdram_router / multi-device daemons, DESIGN.md §5j):
 *   --scenario vendor-mix  address every request to an explicit
 *                     device (kFlagDeviceId) drawn from vendor groups
 *                     A-L with the paper's capability skew: J/K/L
 *                     cannot do Frac/QUAC, so those requests must be
 *                     steered (router) or answered with a typed
 *                     CAPABILITY status (daemon) - never time out
 *   --fleet-chips N   chips per vendor group the mix draws from
 *                     (default 64)
 *   --puf-enroll K    sequential mode: enroll K PUF keys on devices
 *                     spread over the capable groups, exit 0 iff all
 *                     enrollments return OK
 *   --puf-verify K    sequential mode: PUF_RESPONSE the same K keys,
 *                     exit 0 iff every one verifies OK
 *   --json-out FILE   write the summary as one JSON line; includes
 *                     the server-side latency histograms fetched via
 *                     STATS after the run under the "server" key
 *   --quiet           suppress the human-readable table
 *
 * Storm mode (the 10k-connection smoke):
 *   --storm N         open N concurrent connections, send ONE request
 *                     on each, await every response, then hold the
 *                     connections open until the server closes them
 *                     (a drain) or --hold-secs passes. Exits 0 only
 *                     when every connection got its response.
 *   --ready-file F    written once all storm responses arrived, so a
 *                     driving script knows when to SIGTERM the server
 *   --hold-secs S     storm hold ceiling (default 30)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <poll.h>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "service/client.hh"
#include "service/fleet.hh"
#include "service/net.hh"
#include "service/proto.hh"
#include "sim/vendor.hh"

using namespace fracdram;
using Clock = std::chrono::steady_clock;

namespace
{

struct Options
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    int conns = 4;
    int threads = 0; //!< 0 = auto
    int window = 16;
    double duration = 2.0;
    int warmupMs = 200;
    std::uint32_t bytes = 32;
    bool raw = false;
    bool trace = false;
    bool checkHealth = false;
    std::string jsonOut;
    bool quiet = false;
    int storm = 0;
    std::string readyFile;
    int holdSecs = 30;
    std::string scenario;         //!< "" (default) or "vendor-mix"
    std::uint32_t fleetChips = 64; //!< chips per group in the mix
    int pufEnroll = 0;
    int pufVerify = 0;
};

/** Power-of-two microsecond latency buckets (last = overflow). */
constexpr int kHistBuckets = 21;

struct LatencyHist
{
    std::uint64_t counts[kHistBuckets] = {};

    void add(double us)
    {
        int b = 0;
        while (b < kHistBuckets - 1 &&
               static_cast<double>(1u << b) < us)
            ++b;
        ++counts[b];
    }

    void merge(const LatencyHist &o)
    {
        for (int i = 0; i < kHistBuckets; ++i)
            counts[i] += o.counts[i];
    }

    std::string json() const
    {
        std::string bounds = "[", vals = "[";
        for (int i = 0; i < kHistBuckets; ++i) {
            if (i > 0) {
                bounds += ", ";
                vals += ", ";
            }
            bounds += i == kHistBuckets - 1
                          ? "null"
                          : std::to_string(1u << i);
            vals += std::to_string(counts[i]);
        }
        return "{\"le_us\": " + bounds + "], \"counts\": " + vals +
               "]}";
    }

    /** Bucket-bound quantile (microseconds, upper bound of rank). */
    double quantileUs(double q) const
    {
        std::uint64_t total = 0;
        for (const std::uint64_t c : counts)
            total += c;
        if (total == 0)
            return 0.0;
        const auto target = static_cast<std::uint64_t>(
            q * static_cast<double>(total - 1));
        std::uint64_t cum = 0;
        for (int i = 0; i < kHistBuckets; ++i) {
            cum += counts[i];
            if (cum > target)
                return static_cast<double>(
                    1u << std::min(i, kHistBuckets - 2));
        }
        return static_cast<double>(1u << (kHistBuckets - 2));
    }
};

/** One second of the run as the client saw it (timeline output). */
struct SecondBucket
{
    std::uint64_t ok = 0;
    LatencyHist hist;
};

/** What one generator thread measured across its connections. */
struct WorkerResult
{
    std::vector<double> latenciesUs;
    LatencyHist hist;
    std::vector<SecondBucket> timeline; //!< indexed by run second
    std::uint64_t ok = 0;
    std::uint64_t busy = 0;
    std::uint64_t rateLimited = 0;
    std::uint64_t capability = 0; //!< typed CAPABILITY refusals
    std::uint64_t errors = 0;
    std::string firstError;
};

/** One multiplexed connection of a generator thread. */
struct GenConn
{
    int fd = -1;
    service::FrameReader reader;
    std::deque<Clock::time_point> inFlight;
    std::uint16_t seq = 0;
    std::uint64_t nextId = 0;
    std::uint64_t rng = 0; //!< vendor-mix device stream (xorshift)
    bool closed = false;
};

/** xorshift64: cheap per-connection device id stream. */
std::uint64_t
nextRand(std::uint64_t &s)
{
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
}

/**
 * The vendor-mix device draw: groups A-L uniformly (so one in four
 * requests hits a group whose timing checkers make Frac impossible),
 * chip index within --fleet-chips.
 */
std::uint32_t
vendorMixDevice(std::uint64_t &rng, std::uint32_t fleet_chips)
{
    const std::uint64_t r = nextRand(rng);
    const auto group = static_cast<sim::DramGroup>(r % 12);
    const auto chip =
        static_cast<std::uint32_t>((r >> 8) % fleet_chips);
    return fleet::makeDeviceId(group, chip);
}

void
noteError(WorkerResult &result, const std::string &err)
{
    ++result.errors;
    if (result.firstError.empty())
        result.firstError = err;
}

/**
 * One generator thread: @p n_conns non-blocking pipelined
 * connections, poll-multiplexed. Every batch of responses read off a
 * connection is replaced with one writeAll of the same number of
 * requests, built by patching seq/id into a prebuilt frame template.
 */
void
runWorker(const Options &opt, int worker, int n_conns,
          Clock::time_point run_start, Clock::time_point warmup_end,
          Clock::time_point deadline, WorkerResult &result)
{
    // Prebuilt request frame; seq lives at offset 6, the request id
    // (traced runs only) at offset 8 (4-byte length prefix + type,
    // flags, u16 seq). With the vendor-mix scenario the device id
    // sits right after the header - after the request id when both
    // flags are on.
    const bool vendor_mix = opt.scenario == "vendor-mix";
    service::Request req;
    req.type = service::MsgType::GetEntropy;
    req.flags = opt.raw ? service::kFlagRawEntropy : 0;
    if (opt.trace)
        req.flags |= service::kFlagRequestId;
    if (vendor_mix)
        req.flags |= service::kFlagDeviceId;
    req.nBytes = opt.bytes;
    const std::vector<std::uint8_t> tmpl =
        service::frame(service::encodeRequest(req));
    constexpr std::size_t kSeqOff = 6, kIdOff = 8;
    const std::size_t dev_off = opt.trace ? 16 : 8;

    std::vector<GenConn> conns(static_cast<std::size_t>(n_conns));
    std::string err;
    for (std::size_t i = 0; i < conns.size(); ++i) {
        conns[i].fd = service::connectTcp(opt.host, opt.port, &err);
        if (conns[i].fd < 0) {
            noteError(result, err);
            for (auto &c : conns)
                service::closeFd(c.fd);
            return;
        }
        // Run-unique ids: thread in the top bits, conn below, a
        // counter underneath.
        conns[i].nextId =
            (static_cast<std::uint64_t>(worker + 1) << 40) |
            (static_cast<std::uint64_t>(i) << 24);
        conns[i].rng = conns[i].nextId | 0x9e3779b9u;
    }

    std::vector<std::uint8_t> sendbuf;
    auto send_batch = [&](GenConn &c, int k) -> bool {
        sendbuf.clear();
        for (int i = 0; i < k; ++i) {
            const std::size_t at = sendbuf.size();
            sendbuf.insert(sendbuf.end(), tmpl.begin(), tmpl.end());
            ++c.seq;
            sendbuf[at + kSeqOff] =
                static_cast<std::uint8_t>(c.seq & 0xff);
            sendbuf[at + kSeqOff + 1] =
                static_cast<std::uint8_t>(c.seq >> 8);
            if (opt.trace) {
                const std::uint64_t id = ++c.nextId;
                for (int b = 0; b < 8; ++b)
                    sendbuf[at + kIdOff +
                            static_cast<std::size_t>(b)] =
                        static_cast<std::uint8_t>(id >> (8 * b));
            }
            if (vendor_mix) {
                const std::uint32_t dev =
                    vendorMixDevice(c.rng, opt.fleetChips);
                for (int b = 0; b < 4; ++b)
                    sendbuf[at + dev_off +
                            static_cast<std::size_t>(b)] =
                        static_cast<std::uint8_t>(dev >> (8 * b));
            }
        }
        if (!service::writeAll(c.fd, sendbuf.data(), sendbuf.size(),
                               &err)) {
            noteError(result, err);
            return false;
        }
        const auto now = Clock::now();
        for (int i = 0; i < k; ++i)
            c.inFlight.push_back(now);
        return true;
    };

    for (auto &c : conns) {
        if (!send_batch(c, opt.window)) {
            for (auto &cc : conns)
                service::closeFd(cc.fd);
            return;
        }
    }

    std::vector<std::uint8_t> rdbuf(64 * 1024);
    std::vector<std::uint8_t> payload;
    std::vector<pollfd> pfds;
    service::Response resp;
    result.latenciesUs.reserve(1 << 16);
    std::size_t open = conns.size();
    while (open > 0) {
        pfds.clear();
        for (auto &c : conns)
            if (!c.closed)
                pfds.push_back({c.fd, POLLIN, 0});
        const int rc =
            ::poll(pfds.data(),
                   static_cast<nfds_t>(pfds.size()), 5000);
        if (rc <= 0) {
            noteError(result, rc == 0 ? "recv timeout"
                                      : std::strerror(errno));
            break;
        }
        std::size_t pi = 0;
        for (auto &c : conns) {
            if (c.closed)
                continue;
            const short revents = pfds[pi++].revents;
            if (revents == 0)
                continue;
            const long n = service::readSome(c.fd, rdbuf.data(),
                                             rdbuf.size());
            if (n <= 0) {
                if (!c.inFlight.empty())
                    noteError(result, "connection closed with "
                                      "requests in flight");
                c.closed = true;
                service::closeFd(c.fd);
                --open;
                continue;
            }
            c.reader.feed(rdbuf.data(),
                          static_cast<std::size_t>(n));
            int completed = 0;
            const auto now = Clock::now();
            while (c.reader.next(payload)) {
                if (!service::decodeResponse(payload.data(),
                                             payload.size(), resp,
                                             &err)) {
                    noteError(result, err);
                    continue;
                }
                if (c.inFlight.empty())
                    continue; // never happens on a sane server
                const auto sent = c.inFlight.front();
                c.inFlight.pop_front();
                ++completed;
                switch (resp.status) {
                case service::Status::Ok: {
                    ++result.ok;
                    const double us =
                        std::chrono::duration<double, std::micro>(
                            now - sent)
                            .count();
                    // Timeline buckets cover the whole run (warmup
                    // included): they narrate the run, the aggregate
                    // stats below judge it.
                    const auto sec = static_cast<std::size_t>(
                        std::chrono::duration<double>(now - run_start)
                            .count());
                    if (sec >= result.timeline.size())
                        result.timeline.resize(sec + 1);
                    ++result.timeline[sec].ok;
                    result.timeline[sec].hist.add(us);
                    if (sent >= warmup_end) {
                        result.latenciesUs.push_back(us);
                        result.hist.add(us);
                    }
                    break;
                }
                case service::Status::Busy:
                    ++result.busy;
                    break;
                case service::Status::RateLimited:
                    ++result.rateLimited;
                    break;
                case service::Status::Capability:
                    // Typed refusal, not a failure: the vendor-mix
                    // scenario expects these from J/K/L devices.
                    ++result.capability;
                    break;
                case service::Status::Error:
                    noteError(result, resp.text);
                    break;
                }
            }
            if (completed > 0 && now < deadline) {
                if (!send_batch(c, completed)) {
                    c.closed = true;
                    service::closeFd(c.fd);
                    --open;
                }
            } else if (c.inFlight.empty()) {
                c.closed = true;
                service::closeFd(c.fd);
                --open;
            }
        }
    }
    for (auto &c : conns)
        if (!c.closed)
            service::closeFd(c.fd);
}

/**
 * Pull one `"name": {...}` object out of a JSON blob by brace
 * matching - enough to lift a histogram summary out of STATS without
 * a JSON parser.
 */
std::string
extractJsonObject(const std::string &json, const std::string &name)
{
    const std::string key = "\"" + name + "\": {";
    const std::size_t at = json.find(key);
    if (at == std::string::npos)
        return "";
    const std::size_t open = at + key.size() - 1;
    int depth = 0;
    for (std::size_t j = open; j < json.size(); ++j) {
        if (json[j] == '{')
            ++depth;
        else if (json[j] == '}' && --depth == 0)
            return json.substr(open, j - open + 1);
    }
    return "";
}

/**
 * Fetch STATS after the run and summarize the server-side view of
 * the same traffic: the end-to-end request histogram plus the two
 * stages the daemon controls (queue wait, write batching).
 * @return "" when the server or its telemetry is unavailable
 */
std::string
fetchServerSummary(const Options &opt)
{
    service::Client client;
    std::string err, stats;
    if (!client.connect(opt.host, opt.port, &err) ||
        !client.stats(stats, &err))
        return "";
    static const char *const kHistograms[] = {
        "service.request_ns",
        "service.queue_wait_ns",
        "service.write_batch_frames",
        "service.batch_bits",
    };
    std::string out = "{";
    bool first = true;
    for (const char *name : kHistograms) {
        const std::string obj = extractJsonObject(stats, name);
        if (obj.empty())
            continue;
        out += first ? "" : ", ";
        first = false;
        out += "\"" + std::string(name) + "\": " + obj;
    }
    out += "}";
    return first ? "" : out;
}

double
percentile(std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
    return sorted[rank];
}

int
checkHealth(const Options &opt)
{
    service::Client client;
    std::string err, json;
    if (!client.connect(opt.host, opt.port, &err) ||
        !client.health(json, &err)) {
        std::fprintf(stderr, "health check failed: %s\n",
                     err.c_str());
        return 1;
    }
    std::printf("%s\n", json.c_str());
    return json.find("\"status\"") != std::string::npos ? 0 : 1;
}

/** The k-th key of the --puf-enroll/--puf-verify sequence: devices
 *  spread round-robin over the Frac-capable vendor groups, one
 *  (bank 0, row 1) reference each. */
std::uint32_t
pufDeviceFor(int k)
{
    static const std::vector<sim::DramGroup> capable =
        sim::fracCapableGroups();
    return fleet::makeDeviceId(
        capable[static_cast<std::size_t>(k) % capable.size()],
        static_cast<std::uint32_t>(k));
}

/**
 * Sequential PUF mode: enroll (or verify) @p count keys through one
 * blocking client. Exit status is the contract: 0 iff every key came
 * back OK (and, verifying, matched its enrollment) - the fleet smoke
 * drives failover through this.
 */
int
runPufMode(const Options &opt, int count, bool verify)
{
    service::Client client;
    std::string err;
    if (!client.connect(opt.host, opt.port, &err)) {
        std::fprintf(stderr, "puf: connect failed: %s\n",
                     err.c_str());
        return 1;
    }
    int failed = 0;
    std::uint32_t worst_hamming = 0;
    for (int k = 0; k < count; ++k) {
        const std::uint32_t device = pufDeviceFor(k);
        service::Status status{};
        BitVector bits;
        bool ok;
        std::uint32_t hamming = 0;
        if (verify)
            ok = client.pufResponse(device, 0, 1, bits, hamming,
                                    status, &err);
        else
            ok = client.pufEnroll(device, 0, 1, bits, status, &err);
        if (!ok || status != service::Status::Ok) {
            ++failed;
            std::fprintf(stderr, "puf: %s key %d (device 0x%08x) "
                                 "failed: %s\n",
                         verify ? "verify" : "enroll", k, device,
                         ok ? service::statusName(status)
                            : err.c_str());
            continue;
        }
        if (verify) {
            // An OK answer carrying the no-reference sentinel means
            // the serving device evaluated the challenge but never
            // enrolled this key - a lost reference, not a match.
            if (hamming == service::kNoHamming) {
                ++failed;
                std::fprintf(stderr,
                             "puf: verify key %d (device 0x%08x) "
                             "failed: no reference enrolled\n",
                             k, device);
                continue;
            }
            worst_hamming = std::max(worst_hamming, hamming);
        }
    }
    if (!opt.quiet) {
        if (verify)
            std::printf("puf: %d/%d keys verified, worst hamming "
                        "%u\n",
                        count - failed, count, worst_hamming);
        else
            std::printf("puf: %d/%d keys enrolled\n", count - failed,
                        count);
    }
    return failed == 0 ? 0 : 1;
}

/**
 * Storm mode: N concurrent connections, one request each, hold until
 * the server hangs up (a drain) or the ceiling passes. Per-conn state
 * is one fd plus a tiny response buffer, so 10k connections fit well
 * under the fd and memory budgets of one process.
 */
int
runStorm(const Options &opt)
{
    struct StormConn
    {
        int fd = -1;
        std::vector<std::uint8_t> buf;
        bool answered = false;
        bool closed = false;
    };

    service::Request req;
    req.type = service::MsgType::GetEntropy;
    req.nBytes = 8;
    req.seq = 1;
    const auto tmpl = service::frame(service::encodeRequest(req));

    const std::size_t n = static_cast<std::size_t>(opt.storm);
    std::vector<StormConn> conns(n);
    std::string err;
    std::size_t connected = 0;
    for (std::size_t i = 0; i < n; ++i) {
        conns[i].fd = service::connectTcp(opt.host, opt.port, &err);
        if (conns[i].fd < 0) {
            std::fprintf(stderr,
                         "storm: connect %zu/%zu failed: %s\n", i, n,
                         err.c_str());
            break;
        }
        if (!service::writeAll(conns[i].fd, tmpl.data(), tmpl.size(),
                               &err)) {
            std::fprintf(stderr, "storm: send %zu failed: %s\n", i,
                         err.c_str());
            service::closeFd(conns[i].fd);
            conns[i].fd = -1;
            break;
        }
        service::setNonBlocking(conns[i].fd);
        ++connected;
    }
    std::printf("storm: %zu/%zu connections opened\n", connected, n);
    if (connected < n)
        return 1;

    // Await one response per connection.
    std::vector<pollfd> pfds;
    std::uint8_t rdbuf[4096];
    std::size_t answered = 0;
    const auto answer_deadline =
        Clock::now() + std::chrono::seconds(60);
    while (answered < connected && Clock::now() < answer_deadline) {
        pfds.clear();
        for (auto &c : conns)
            if (!c.answered && !c.closed)
                pfds.push_back({c.fd, POLLIN, 0});
        if (::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                   1000) <= 0)
            continue;
        std::size_t pi = 0;
        for (auto &c : conns) {
            if (c.answered || c.closed)
                continue;
            const short revents = pfds[pi++].revents;
            if (revents == 0)
                continue;
            const long r =
                service::readSome(c.fd, rdbuf, sizeof(rdbuf));
            if (r <= 0) {
                c.closed = true;
                service::closeFd(c.fd);
                continue;
            }
            c.buf.insert(c.buf.end(), rdbuf, rdbuf + r);
            if (c.buf.size() >= 4) {
                const std::size_t want =
                    4 + (std::size_t{c.buf[0]} |
                         (std::size_t{c.buf[1]} << 8) |
                         (std::size_t{c.buf[2]} << 16) |
                         (std::size_t{c.buf[3]} << 24));
                if (c.buf.size() >= want) {
                    c.answered = true;
                    c.buf.clear();
                    c.buf.shrink_to_fit();
                    ++answered;
                }
            }
        }
    }
    std::printf("storm: %zu/%zu answered\n", answered, connected);
    if (!opt.readyFile.empty()) {
        std::FILE *f = std::fopen(opt.readyFile.c_str(), "w");
        if (f != nullptr) {
            std::fprintf(f, "answered %zu\n", answered);
            std::fclose(f);
        }
    }
    if (answered < connected)
        return 1;

    // Hold: connections stay open until the server drains (EOF on
    // every fd) or the ceiling passes.
    std::size_t hung_up = 0;
    for (const auto &c : conns)
        if (c.closed)
            ++hung_up;
    const auto hold_deadline =
        Clock::now() + std::chrono::seconds(opt.holdSecs);
    while (hung_up < connected && Clock::now() < hold_deadline) {
        pfds.clear();
        for (auto &c : conns)
            if (!c.closed)
                pfds.push_back({c.fd, POLLIN, 0});
        if (::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                   1000) <= 0)
            continue;
        std::size_t pi = 0;
        for (auto &c : conns) {
            if (c.closed)
                continue;
            const short revents = pfds[pi++].revents;
            if (revents == 0)
                continue;
            const long r =
                service::readSome(c.fd, rdbuf, sizeof(rdbuf));
            if (r <= 0) {
                c.closed = true;
                service::closeFd(c.fd);
                ++hung_up;
            }
            // Drain any trailing bytes silently (drain responses).
        }
    }
    std::printf("storm: %zu/%zu hung up by server\n", hung_up,
                connected);
    for (auto &c : conns)
        if (!c.closed)
            service::closeFd(c.fd);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            fatal_if(i + 1 >= argc, "missing value for %s",
                     arg.c_str());
            return argv[++i];
        };
        if (arg == "--host")
            opt.host = next();
        else if (arg == "--port")
            opt.port = static_cast<std::uint16_t>(
                std::strtoul(next().c_str(), nullptr, 10));
        else if (arg == "--conns")
            opt.conns = std::atoi(next().c_str());
        else if (arg == "--threads")
            opt.threads = std::atoi(next().c_str());
        else if (arg == "--window")
            opt.window = std::atoi(next().c_str());
        else if (arg == "--duration")
            opt.duration = std::atof(next().c_str());
        else if (arg == "--warmup-ms")
            opt.warmupMs = std::atoi(next().c_str());
        else if (arg == "--bytes")
            opt.bytes = static_cast<std::uint32_t>(
                std::strtoul(next().c_str(), nullptr, 10));
        else if (arg == "--raw")
            opt.raw = true;
        else if (arg == "--trace")
            opt.trace = true;
        else if (arg == "--check-health")
            opt.checkHealth = true;
        else if (arg == "--json-out")
            opt.jsonOut = next();
        else if (arg == "--quiet")
            opt.quiet = true;
        else if (arg == "--storm")
            opt.storm = std::atoi(next().c_str());
        else if (arg == "--ready-file")
            opt.readyFile = next();
        else if (arg == "--hold-secs")
            opt.holdSecs = std::atoi(next().c_str());
        else if (arg == "--scenario")
            opt.scenario = next();
        else if (arg == "--fleet-chips")
            opt.fleetChips = static_cast<std::uint32_t>(
                std::strtoul(next().c_str(), nullptr, 10));
        else if (arg == "--puf-enroll")
            opt.pufEnroll = std::atoi(next().c_str());
        else if (arg == "--puf-verify")
            opt.pufVerify = std::atoi(next().c_str());
        else
            fatal("unknown option '%s'", arg.c_str());
    }
    fatal_if(opt.port == 0, "--port is required");
    fatal_if(opt.conns < 1 || opt.window < 1,
             "--conns and --window must be at least 1");
    fatal_if(!opt.scenario.empty() && opt.scenario != "vendor-mix",
             "unknown --scenario '%s' (supported: vendor-mix)",
             opt.scenario.c_str());
    fatal_if(opt.fleetChips == 0, "--fleet-chips must be >= 1");

    if (opt.checkHealth)
        return checkHealth(opt);
    if (opt.pufEnroll > 0)
        return runPufMode(opt, opt.pufEnroll, /*verify=*/false);
    if (opt.pufVerify > 0)
        return runPufMode(opt, opt.pufVerify, /*verify=*/true);
    if (opt.storm > 0)
        return runStorm(opt);

    // Default thread count: half the cores (the server needs the
    // other half on one machine), clamped to [1, conns].
    int n_threads = opt.threads;
    if (n_threads <= 0)
        n_threads = std::max(
            1, static_cast<int>(
                   std::thread::hardware_concurrency()) /
                   2);
    n_threads = std::max(1, std::min(n_threads, opt.conns));

    const auto start = Clock::now();
    const auto warmup_end =
        start + std::chrono::milliseconds(opt.warmupMs);
    const auto deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(opt.duration));

    std::vector<WorkerResult> results(
        static_cast<std::size_t>(n_threads));
    std::vector<std::thread> threads;
    threads.reserve(results.size());
    for (int w = 0; w < n_threads; ++w) {
        // Conns are spread as evenly as the division allows.
        const int n_conns = opt.conns / n_threads +
                            (w < opt.conns % n_threads ? 1 : 0);
        threads.emplace_back(runWorker, std::cref(opt), w, n_conns,
                             start, warmup_end, deadline,
                             std::ref(results[static_cast<
                                 std::size_t>(w)]));
    }
    for (auto &t : threads)
        t.join();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();

    WorkerResult total;
    for (auto &r : results) {
        total.ok += r.ok;
        total.busy += r.busy;
        total.rateLimited += r.rateLimited;
        total.capability += r.capability;
        total.errors += r.errors;
        if (total.firstError.empty())
            total.firstError = r.firstError;
        total.hist.merge(r.hist);
        total.latenciesUs.insert(total.latenciesUs.end(),
                                 r.latenciesUs.begin(),
                                 r.latenciesUs.end());
        if (r.timeline.size() > total.timeline.size())
            total.timeline.resize(r.timeline.size());
        for (std::size_t s = 0; s < r.timeline.size(); ++s) {
            total.timeline[s].ok += r.timeline[s].ok;
            total.timeline[s].hist.merge(r.timeline[s].hist);
        }
    }
    std::sort(total.latenciesUs.begin(), total.latenciesUs.end());
    const double rps =
        elapsed > 0.0 ? static_cast<double>(total.ok) / elapsed : 0.0;
    const double p50 = percentile(total.latenciesUs, 0.50);
    const double p95 = percentile(total.latenciesUs, 0.95);
    const double p99 = percentile(total.latenciesUs, 0.99);

    if (!opt.quiet) {
        std::printf("loadgen: %d conns x window %d on %d threads, "
                    "%u bytes/req%s, %.1f s\n",
                    opt.conns, opt.window, n_threads, opt.bytes,
                    opt.raw ? " (raw)" : "", elapsed);
        std::printf("  ok %llu  busy %llu  rate_limited %llu  "
                    "capability %llu  errors %llu\n",
                    static_cast<unsigned long long>(total.ok),
                    static_cast<unsigned long long>(total.busy),
                    static_cast<unsigned long long>(total.rateLimited),
                    static_cast<unsigned long long>(total.capability),
                    static_cast<unsigned long long>(total.errors));
        std::printf("  throughput %.0f req/s\n", rps);
        std::printf("  latency p50 %.1f us  p95 %.1f us  "
                    "p99 %.1f us  (%zu samples)\n",
                    p50, p95, p99, total.latenciesUs.size());
        if (!total.firstError.empty())
            std::printf("  first error: %s\n",
                        total.firstError.c_str());
    }

    // Per-second narrative of the run: client-observed req/s and
    // bucket-bound p99 per elapsed second.
    std::string timeline_json = "[";
    for (std::size_t s = 0; s < total.timeline.size(); ++s) {
        const SecondBucket &b = total.timeline[s];
        timeline_json += strprintf(
            "%s{\"t_s\": %zu, \"rps\": %llu, \"p99_us\": %.1f}",
            s ? ", " : "", s,
            static_cast<unsigned long long>(b.ok),
            b.hist.quantileUs(0.99));
    }
    timeline_json += "]";

    const std::string server = fetchServerSummary(opt);
    const std::string json = strprintf(
        "{\"conns\": %d, \"threads\": %d, \"window\": %d, "
        "\"bytes_per_req\": %u, "
        "\"raw\": %s, \"traced\": %s, \"scenario\": \"%s\", "
        "\"seconds\": %.3f, "
        "\"ok\": %llu, \"busy\": %llu, \"rate_limited\": %llu, "
        "\"capability\": %llu, "
        "\"errors\": %llu, \"requests_per_sec\": %.1f, "
        "\"p50_us\": %.1f, \"p95_us\": %.1f, \"p99_us\": %.1f, "
        "\"latency_hist_us\": %s, "
        "\"timeline\": %s, "
        "\"server\": %s}",
        opt.conns, n_threads, opt.window, opt.bytes,
        opt.raw ? "true" : "false", opt.trace ? "true" : "false",
        opt.scenario.empty() ? "default" : opt.scenario.c_str(),
        elapsed, static_cast<unsigned long long>(total.ok),
        static_cast<unsigned long long>(total.busy),
        static_cast<unsigned long long>(total.rateLimited),
        static_cast<unsigned long long>(total.capability),
        static_cast<unsigned long long>(total.errors), rps, p50, p95,
        p99, total.hist.json().c_str(), timeline_json.c_str(),
        server.empty() ? "null" : server.c_str());
    if (!opt.jsonOut.empty()) {
        std::FILE *f = std::fopen(opt.jsonOut.c_str(), "w");
        fatal_if(f == nullptr, "cannot write '%s'",
                 opt.jsonOut.c_str());
        std::fprintf(f, "%s\n", json.c_str());
        std::fclose(f);
    } else if (opt.quiet) {
        std::printf("%s\n", json.c_str());
    }

    return total.errors == 0 && total.ok > 0 ? 0 : 1;
}
