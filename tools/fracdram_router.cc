/**
 * @file
 * fracdram_router - the fleet's consistent-hashing front tier.
 *
 * Terminates client connections speaking the fracdram_serve wire
 * protocol and fans requests out over N daemon processes (DESIGN.md
 * §5j): device-addressed work places by consistent hashing on the
 * device id, PUF enrollment is replicated to the key's ring
 * successor, anonymous entropy round-robins, and vendor groups that
 * cannot do Frac/QUAC are steered (entropy) or refused with a typed
 * CAPABILITY status (PUF) instead of timing out downstream.
 *
 * Health: a prober walks each daemon's /healthz; consecutive
 * failures (watchdog 503s included) eject a daemon from placement,
 * consecutive successes re-admit it - hysteresis, so a flapping
 * daemon cannot thrash the ring. SIGTERM/SIGINT drain gracefully.
 *
 * Options:
 *   --port N               client listen port (default 7410;
 *                          0 = ephemeral)
 *   --port-file PATH       write the bound port once everything is up
 *   --backend H:P[:MP]     daemon data port P (and metrics port MP)
 *                          on host H; repeatable, at least one
 *   --vnodes N             ring points per daemon (default 64)
 *   --no-replicate         do not replicate PUF_ENROLL
 *   --no-steer             CAPABILITY error instead of steering
 *                          incapable entropy devices
 *   --probe-interval-ms N  health probe cadence (default 250)
 *   --eject-after N        consecutive probe failures (default 3)
 *   --readmit-after N      consecutive successes (default 2)
 *   --upstream-timeout-ms N per-request daemon deadline (def. 5000)
 *   --max-conns N          client connection cap (default 256)
 *   --metrics-port N       router HTTP: /metrics (fleet aggregate),
 *                          /fleet, /healthz (0 = ephemeral)
 *   --metrics-port-file P  write the bound metrics port to P
 *   --telemetry-out DIR    write metrics/trace reports on exit
 *   --quiet                suppress inform() chatter
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "common/logging.hh"
#include "service/router.hh"
#include "telemetry/report.hh"

using namespace fracdram;

namespace
{

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

/** Parse `host:port[:metricsPort]`. */
fleet::BackendAddr
parseBackend(const std::string &spec)
{
    fleet::BackendAddr addr;
    const std::size_t c1 = spec.find(':');
    fatal_if(c1 == std::string::npos,
             "bad --backend '%s' (want host:port[:metricsPort])",
             spec.c_str());
    addr.host = spec.substr(0, c1);
    const std::size_t c2 = spec.find(':', c1 + 1);
    addr.port = static_cast<std::uint16_t>(
        std::strtoul(spec.c_str() + c1 + 1, nullptr, 10));
    if (c2 != std::string::npos)
        addr.metricsPort = static_cast<std::uint16_t>(
            std::strtoul(spec.c_str() + c2 + 1, nullptr, 10));
    fatal_if(addr.host.empty() || addr.port == 0,
             "bad --backend '%s' (want host:port[:metricsPort])",
             spec.c_str());
    return addr;
}

} // namespace

int
main(int argc, char **argv)
{
    fleet::RouterConfig cfg;
    cfg.port = 7410;
    std::string port_file, metrics_port_file, telemetry_out;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            fatal_if(i + 1 >= argc, "missing value for %s",
                     arg.c_str());
            return argv[++i];
        };
        if (arg == "--port")
            cfg.port = static_cast<std::uint16_t>(
                std::strtoul(next().c_str(), nullptr, 10));
        else if (arg == "--port-file")
            port_file = next();
        else if (arg == "--backend")
            cfg.backends.push_back(parseBackend(next()));
        else if (arg == "--vnodes")
            cfg.vnodes = std::atoi(next().c_str());
        else if (arg == "--no-replicate")
            cfg.replicateEnroll = false;
        else if (arg == "--no-steer")
            cfg.steerIncapable = false;
        else if (arg == "--probe-interval-ms")
            cfg.probeIntervalMs = std::atoi(next().c_str());
        else if (arg == "--eject-after")
            cfg.ejectAfter = std::atoi(next().c_str());
        else if (arg == "--readmit-after")
            cfg.readmitAfter = std::atoi(next().c_str());
        else if (arg == "--upstream-timeout-ms")
            cfg.upstreamTimeoutMs = std::atoi(next().c_str());
        else if (arg == "--max-conns")
            cfg.maxConnections =
                std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--metrics-port")
            cfg.metricsPort = std::atoi(next().c_str());
        else if (arg == "--metrics-port-file")
            metrics_port_file = next();
        else if (arg == "--telemetry-out")
            telemetry_out = next();
        else if (arg == "--quiet")
            quiet = true;
        else
            fatal("unknown option '%s'", arg.c_str());
    }
    if (quiet)
        setVerbose(false);
    fatal_if(cfg.backends.empty(),
             "need at least one --backend host:port[:metricsPort]");

    telemetry::RunScope telem("fracdram_router", telemetry_out);
    telemetry::setEnabled(true);

    struct sigaction sa{};
    sa.sa_handler = onSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    fleet::Router router(cfg);
    std::string err;
    if (!router.start(&err))
        fatal("cannot start: %s", err.c_str());

    std::printf("fracdram_router listening on 127.0.0.1:%u "
                "(%zu backends)\n",
                router.port(), router.numBackends());
    if (router.metricsPort() != 0)
        std::printf("fracdram_router fleet view on "
                    "http://127.0.0.1:%u/fleet\n",
                    router.metricsPort());
    std::fflush(stdout);

    // Same contract as fracdram_serve: each port file lands via
    // tmp+rename, and the data port file is written last, after
    // every listener is live.
    const auto write_port_file = [](const std::string &path,
                                    std::uint16_t port) {
        if (path.empty())
            return;
        const std::string tmp = path + ".tmp";
        std::FILE *f = std::fopen(tmp.c_str(), "w");
        fatal_if(f == nullptr, "cannot write port file '%s'",
                 tmp.c_str());
        std::fprintf(f, "%u\n", port);
        std::fflush(f);
        std::fclose(f);
        fatal_if(std::rename(tmp.c_str(), path.c_str()) != 0,
                 "cannot rename port file '%s' -> '%s'", tmp.c_str(),
                 path.c_str());
    };
    write_port_file(metrics_port_file, router.metricsPort());
    write_port_file(port_file, router.port());

    while (g_stop == 0) {
        timespec ts{0, 200 * 1000 * 1000};
        nanosleep(&ts, nullptr);
    }
    inform("router: signal received, draining");
    router.stop();
    std::printf("fracdram_router: clean shutdown\n");
    return 0;
}
