/**
 * @file
 * fracdram_serve - the FracDRAM entropy/PUF serving daemon.
 *
 * Exposes a pool of simulated FracDRAM devices over the length-
 * prefixed binary protocol of src/service/proto.hh on a loopback TCP
 * port: GET_ENTROPY (DRBG-pooled or raw QUAC-TRNG stream),
 * PUF_ENROLL / PUF_RESPONSE, and HEALTH / STATS JSON snapshots.
 *
 * SIGTERM/SIGINT drain gracefully: queued requests are answered,
 * then the process exits 0. With --telemetry-out DIR the final
 * metrics/trace reports land in DIR.
 *
 * Options:
 *   --port N            listen port (default 7411; 0 = ephemeral)
 *   --port-file PATH    write the bound port to PATH once listening
 *   --shards N          devices in the pool (default 4)
 *   --reactors N        event-loop threads (default 0 = auto:
 *                       min(shards, cores))
 *   --no-pin            do not pin reactors/shards to cores
 *   --group X           vendor group A-N (default B)
 *   --cols N            bits per row (default 1024)
 *   --queue-cap N       per-shard queue bound (default 1024)
 *   --batch-max N       max jobs coalesced per wakeup (default 64)
 *   --reseed-kib N      DRBG bytes between reseeds (default 4096)
 *   --max-conns N       connection cap (default 64)
 *   --max-enrollments N PUF references kept per shard (default 4096)
 *   --rate-limit R      per-connection requests/s (default 0 = off)
 *   --idle-timeout-ms N close idle connections (default 60000)
 *   --write-timeout-ms N drop peers that stop reading (default 5000)
 *   --telemetry-out DIR write metrics/trace reports on exit
 *   --quiet             suppress inform() chatter
 *
 * Observability (see DESIGN.md, "Live observability"):
 *   --metrics-port N       HTTP /metrics, /healthz, /varz
 *                          (0 = ephemeral; off when omitted)
 *   --metrics-port-file P  write the bound metrics port to P
 *   --slo-p99-us N         SLO watchdog: windowed request p99 above
 *                          N microseconds flips /healthz to 503
 *   --watchdog-interval-ms N  watchdog window (default 1000)
 *   --trace-ring N         request timelines kept (default 1024)
 *
 * Forensics (see DESIGN.md §5i):
 *   --history-res-ms N     metrics-history tick (default 1000;
 *                          0 disables the ring and /history)
 *   --history-points N     history ring capacity (default 300)
 *   --postmortem-dir DIR   write postmortem-<ts>.json bundles on SLO
 *                          breach, reactor stall, SIGQUIT, or fatal
 *                          signal (off when omitted)
 *   --stall-intervals N    watchdog samples with a frozen reactor
 *                          heartbeat before "stalled" (default 3)
 *
 * SIGQUIT dumps a postmortem bundle on demand and keeps serving.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "common/logging.hh"
#include "service/server.hh"
#include "telemetry/report.hh"

using namespace fracdram;

namespace
{

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_quit_dump = 0;

void
onSignal(int)
{
    g_stop = 1;
}

void
onQuit(int)
{
    g_quit_dump = 1;
}

sim::DramGroup
parseGroup(const std::string &name)
{
    if (name.size() == 1 && name[0] >= 'A' && name[0] <= 'N')
        return static_cast<sim::DramGroup>(name[0] - 'A');
    fatal("unknown group '%s' (expected A-N)", name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    service::ServerConfig cfg;
    cfg.port = 7411;
    std::string port_file, metrics_port_file, telemetry_out;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            fatal_if(i + 1 >= argc, "missing value for %s",
                     arg.c_str());
            return argv[++i];
        };
        if (arg == "--port")
            cfg.port = static_cast<std::uint16_t>(
                std::strtoul(next().c_str(), nullptr, 10));
        else if (arg == "--port-file")
            port_file = next();
        else if (arg == "--shards")
            cfg.numShards = std::atoi(next().c_str());
        else if (arg == "--reactors")
            cfg.numReactors = std::atoi(next().c_str());
        else if (arg == "--no-pin")
            cfg.pinThreads = false;
        else if (arg == "--group")
            cfg.shard.group = parseGroup(next());
        else if (arg == "--cols")
            cfg.shard.colsPerRow = static_cast<std::uint32_t>(
                std::strtoul(next().c_str(), nullptr, 10));
        else if (arg == "--queue-cap")
            cfg.shard.queueCapacity =
                std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--batch-max")
            cfg.shard.maxBatchJobs =
                std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--reseed-kib")
            cfg.shard.reseedBytes =
                std::strtoull(next().c_str(), nullptr, 10) * 1024;
        else if (arg == "--max-conns")
            cfg.maxConnections =
                std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--max-enrollments")
            cfg.shard.maxEnrollments =
                std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--rate-limit")
            cfg.rateLimitPerConn = std::atof(next().c_str());
        else if (arg == "--idle-timeout-ms")
            cfg.idleTimeoutMs = std::atoi(next().c_str());
        else if (arg == "--write-timeout-ms")
            cfg.writeTimeoutMs = std::atoi(next().c_str());
        else if (arg == "--telemetry-out")
            telemetry_out = next();
        else if (arg == "--metrics-port")
            cfg.metricsPort = std::atoi(next().c_str());
        else if (arg == "--metrics-port-file")
            metrics_port_file = next();
        else if (arg == "--slo-p99-us")
            cfg.sloP99Us =
                std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--watchdog-interval-ms")
            cfg.watchdogIntervalMs = std::atoi(next().c_str());
        else if (arg == "--trace-ring")
            cfg.traceRingCapacity =
                std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--history-res-ms")
            cfg.historyResMs = std::atoi(next().c_str());
        else if (arg == "--history-points")
            cfg.historyPoints =
                std::strtoull(next().c_str(), nullptr, 10);
        else if (arg == "--postmortem-dir")
            cfg.postmortemDir = next();
        else if (arg == "--stall-intervals")
            cfg.stallIntervals = std::atoi(next().c_str());
        else if (arg == "--quiet")
            quiet = true;
        else
            fatal("unknown option '%s'", arg.c_str());
    }
    if (quiet)
        setVerbose(false);

    // Record metrics unconditionally so STATS always has substance;
    // RunScope writes the file reports at exit when asked to.
    telemetry::RunScope telem("fracdram_serve", telemetry_out);
    telemetry::setEnabled(true);

    struct sigaction sa{};
    sa.sa_handler = onSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);
    if (!cfg.postmortemDir.empty()) {
        struct sigaction sq{};
        sq.sa_handler = onQuit;
        sigaction(SIGQUIT, &sq, nullptr);
    }

    service::Server server(cfg);
    std::string err;
    if (!server.start(&err))
        fatal("cannot start: %s", err.c_str());

    std::printf("fracdram_serve listening on 127.0.0.1:%u\n",
                server.port());
    if (server.metricsPort() != 0)
        std::printf("fracdram_serve metrics on "
                    "http://127.0.0.1:%u/metrics\n",
                    server.metricsPort());
    std::fflush(stdout);
    // Port files appear only once BOTH listeners are live (start()
    // already bound them), each atomically via tmp+rename so a reader
    // can never observe a half-written number. The data port file is
    // written last: scripts that wait on it may immediately probe
    // /healthz on the metrics port.
    const auto write_port_file = [](const std::string &path,
                                    std::uint16_t port) {
        if (path.empty())
            return;
        const std::string tmp = path + ".tmp";
        std::FILE *f = std::fopen(tmp.c_str(), "w");
        fatal_if(f == nullptr, "cannot write port file '%s'",
                 tmp.c_str());
        std::fprintf(f, "%u\n", port);
        std::fflush(f);
        std::fclose(f);
        fatal_if(std::rename(tmp.c_str(), path.c_str()) != 0,
                 "cannot rename port file '%s' -> '%s'", tmp.c_str(),
                 path.c_str());
    };
    write_port_file(metrics_port_file, server.metricsPort());
    write_port_file(port_file, server.port());

    while (g_stop == 0) {
        if (g_quit_dump != 0) {
            // Operator-requested black box (kill -QUIT): dump and
            // keep serving - SIGQUIT is the "what is going on in
            // there" signal, not a shutdown.
            g_quit_dump = 0;
            if (auto *rec = server.flightRecorder())
                rec->dump("sigquit", "operator-requested dump");
        }
        timespec ts{0, 200 * 1000 * 1000};
        nanosleep(&ts, nullptr);
    }
    inform("service: signal received, draining");
    server.stop();
    std::printf("fracdram_serve: clean shutdown\n");
    return 0;
}
