/**
 * @file
 * fracdram_top - a curses-free terminal dashboard for fracdram_serve.
 *
 * Polls the daemon's Prometheus endpoint (--metrics-port of
 * fracdram_serve) once per interval, diffs consecutive scrapes, and
 * renders per-shard request rate, queue depth and mean batch size
 * plus daemon-wide throughput, latency quantiles (p50/p95/p99 of
 * service.request_ns, computed from the histogram bucket deltas of
 * the window) and reseed counts. Health is taken from /healthz, so
 * an SLO breach shows up as the UNHEALTHY banner the moment the
 * watchdog flips.
 *
 * When the daemon runs with a metrics history (--history-res-ms > 0,
 * the default), each frame also renders server-side sparklines of
 * req/s and p99 from /history - trends survive even when top itself
 * just started, because the window lives in the daemon.
 *
 * No curses dependency: each frame is plain text preceded by an ANSI
 * home+clear, which every terminal understands and which pipes
 * cleanly into a file with --no-clear.
 *
 * Options:
 *   --host H          daemon address (default 127.0.0.1)
 *   --port N          daemon *metrics* port (required)
 *   --interval-ms N   poll period (default 1000)
 *   --iterations N    frames to render, 0 = until ^C (default 0)
 *   --no-clear        append frames instead of redrawing in place
 */

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "service/http.hh"

using namespace fracdram;

namespace
{

volatile std::sig_atomic_t g_stop = 0;

void
onSignal(int)
{
    g_stop = 1;
}

/** One scrape: every sample keyed by `name{labels}` verbatim. */
using Scrape = std::map<std::string, double>;

/** Parse Prometheus text exposition into name{labels} -> value. */
Scrape
parseProm(const std::string &body)
{
    Scrape out;
    std::size_t pos = 0;
    while (pos < body.size()) {
        std::size_t eol = body.find('\n', pos);
        if (eol == std::string::npos)
            eol = body.size();
        const std::string line = body.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t sp = line.rfind(' ');
        if (sp == std::string::npos)
            continue;
        const std::string key = line.substr(0, sp);
        out[key] = std::atof(line.c_str() + sp + 1);
    }
    return out;
}

double
get(const Scrape &s, const std::string &key)
{
    const auto it = s.find(key);
    return it == s.end() ? 0.0 : it->second;
}

/** Positive delta of one sample between scrapes (counters only). */
double
delta(const Scrape &cur, const Scrape &prev, const std::string &key)
{
    const double d = get(cur, key) - get(prev, key);
    return d > 0.0 ? d : 0.0;
}

/**
 * Quantile of a windowed Prometheus histogram: diff the cumulative
 * `le` buckets of two scrapes, then walk to the target rank.
 */
double
windowQuantile(const Scrape &cur, const Scrape &prev,
               const std::string &family, double q)
{
    // Collect (le, windowed cumulative count), sorted numerically.
    const std::string prefix = family + "_bucket{le=\"";
    std::vector<std::pair<double, double>> buckets;
    for (auto it = cur.lower_bound(prefix);
         it != cur.end() && it->first.compare(0, prefix.size(),
                                              prefix) == 0;
         ++it) {
        const std::string le = it->first.substr(
            prefix.size(), it->first.size() - prefix.size() - 2);
        const double bound = le == "+Inf"
                                 ? std::numeric_limits<double>::max()
                                 : std::atof(le.c_str());
        buckets.emplace_back(bound,
                             delta(cur, prev, it->first));
    }
    std::sort(buckets.begin(), buckets.end());
    if (buckets.empty() || buckets.back().second <= 0.0)
        return 0.0;
    const double total = buckets.back().second;
    const double target = q * (total - 1.0);
    for (const auto &[bound, cum] : buckets)
        if (cum > target)
            return bound;
    return buckets.back().first;
}

struct Options
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    int intervalMs = 1000;
    long iterations = 0;
    bool noClear = false;
};

/**
 * Pull every occurrence of `"<field>":<number>` out of a /history
 * response, in order. A real JSON parser would be overkill for the
 * fixed shapes timeseries.cc emits.
 */
std::vector<double>
scanJsonField(const std::string &body, const std::string &field)
{
    std::vector<double> out;
    const std::string needle = "\"" + field + "\":";
    std::size_t pos = 0;
    while ((pos = body.find(needle, pos)) != std::string::npos) {
        pos += needle.size();
        out.push_back(std::atof(body.c_str() + pos));
    }
    return out;
}

/** Render @p vals as one sparkline row scaled to its own max. */
std::string
sparkline(const std::vector<double> &vals)
{
    static const char kRamp[] = " .:-=+*#%@";
    constexpr int kLevels = static_cast<int>(sizeof(kRamp)) - 2;
    double max = 0.0;
    for (const double v : vals)
        max = std::max(max, v);
    std::string out;
    out.reserve(vals.size());
    for (const double v : vals) {
        const int lvl =
            max > 0.0 ? static_cast<int>(std::lround(
                            v / max * kLevels))
                      : 0;
        out.push_back(kRamp[std::clamp(lvl, 0, kLevels)]);
    }
    return out;
}

/**
 * Fetch one series from /history and render it as a labeled
 * sparkline line; returns "" when the daemon has no history (old
 * daemon, --history-res-ms 0) so the frame just omits the section.
 */
std::string
historySparkline(const Options &opt, const std::string &metric,
                 const std::string &field, const std::string &label,
                 double scale, bool per_second)
{
    service::HttpResult res;
    const std::string target =
        "/history?metric=" + metric + "&points=60";
    if (!service::httpGet(opt.host, opt.port, target, res, nullptr) ||
        res.status != 200)
        return "";
    std::vector<double> vals = scanJsonField(res.body, field);
    if (vals.empty())
        return "";
    if (per_second) {
        // Counter points are per-tick deltas; the response carries
        // the tick so the rate conversion is exact.
        const auto res_ms = scanJsonField(res.body, "resolution_ms");
        if (!res_ms.empty() && res_ms[0] > 0.0)
            scale *= 1000.0 / res_ms[0];
    }
    for (double &v : vals)
        v *= scale;
    double last = vals.back(), max = 0.0;
    for (const double v : vals)
        max = std::max(max, v);
    return strprintf("%-10s |%s|  now %8.0f  max %8.0f\n",
                     label.c_str(), sparkline(vals).c_str(), last,
                     max);
}

void
renderFrame(const Options &opt, const Scrape &cur,
            const Scrape &prev, double dt_s, int healthz_status)
{
    if (!opt.noClear)
        std::printf("\033[H\033[2J");

    char stamp[32];
    const std::time_t now = std::time(nullptr);
    std::strftime(stamp, sizeof(stamp), "%H:%M:%S",
                  std::localtime(&now));
    const char *health = healthz_status == 200  ? "healthy"
                         : healthz_status == 0 ? "unreachable"
                                               : "UNHEALTHY";
    std::printf("fracdram_top  %s  %s:%u  [%s]\n\n", stamp,
                opt.host.c_str(), opt.port, health);

    const double jobs_s =
        delta(cur, prev, "fracdram_service_jobs_total") / dt_s;
    const double bytes_s =
        delta(cur, prev, "fracdram_service_entropy_bytes_total") /
        dt_s;
    const double busy_s =
        delta(cur, prev, "fracdram_service_busy_total") / dt_s;
    std::printf("total  %10.0f req/s  %10.0f B/s entropy  "
                "%6.0f busy/s  reseeds %.0f\n",
                jobs_s, bytes_s, busy_s,
                get(cur, "fracdram_service_reseeds_total"));
    std::printf("req latency (server, windowed)  p50 %6.0f us  "
                "p95 %6.0f us  p99 %6.0f us\n\n",
                windowQuantile(cur, prev, "fracdram_service_request_ns",
                               0.50) /
                    1000.0,
                windowQuantile(cur, prev, "fracdram_service_request_ns",
                               0.95) /
                    1000.0,
                windowQuantile(cur, prev, "fracdram_service_request_ns",
                               0.99) /
                    1000.0);

    // Server-side history (absent on daemons without /history).
    const std::string spark_jobs = historySparkline(
        opt, "service.jobs", "value", "req/s", 1.0, true);
    const std::string spark_p99 = historySparkline(
        opt, "service.request_ns", "p99", "p99 us", 1e-3, false);
    if (!spark_jobs.empty() || !spark_p99.empty()) {
        std::printf("history (server-side, newest right)\n%s%s\n",
                    spark_jobs.c_str(), spark_p99.c_str());
    }

    std::printf("%-6s %12s %8s %10s\n", "shard", "req/s", "queue",
                "avg batch");
    for (int s = 0; s < 1024; ++s) {
        const std::string lbl = strprintf("{shard=\"%d\"}", s);
        const std::string depth_key =
            "fracdram_service_shard_queue_depth" + lbl;
        if (cur.find(depth_key) == cur.end())
            break;
        const double jobs = delta(
            cur, prev,
            "fracdram_service_shard_batch_jobs_sum" + lbl);
        const double batches = delta(
            cur, prev,
            "fracdram_service_shard_batch_jobs_count" + lbl);
        std::printf("%-6d %12.0f %8.0f %10.1f\n", s, jobs / dt_s,
                    get(cur, depth_key),
                    batches > 0.0 ? jobs / batches : 0.0);
    }
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            fatal_if(i + 1 >= argc, "missing value for %s",
                     arg.c_str());
            return argv[++i];
        };
        if (arg == "--host")
            opt.host = next();
        else if (arg == "--port")
            opt.port = static_cast<std::uint16_t>(
                std::strtoul(next().c_str(), nullptr, 10));
        else if (arg == "--interval-ms")
            opt.intervalMs = std::atoi(next().c_str());
        else if (arg == "--iterations")
            opt.iterations = std::atol(next().c_str());
        else if (arg == "--no-clear")
            opt.noClear = true;
        else
            fatal("unknown option '%s'", arg.c_str());
    }
    fatal_if(opt.port == 0,
             "--port is required (the daemon's --metrics-port)");
    fatal_if(opt.intervalMs < 50, "--interval-ms must be >= 50");

    struct sigaction sa{};
    sa.sa_handler = onSignal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    Scrape prev;
    bool have_prev = false;
    long frames = 0;
    int failures = 0;
    while (g_stop == 0) {
        service::HttpResult metrics, healthz;
        std::string err;
        if (!service::httpGet(opt.host, opt.port, "/metrics",
                              metrics, &err) ||
            metrics.status != 200) {
            if (++failures >= 3)
                fatal("cannot scrape %s:%u/metrics: %s",
                      opt.host.c_str(), opt.port,
                      err.empty() ? "non-200 response" : err.c_str());
        } else {
            failures = 0;
            service::httpGet(opt.host, opt.port, "/healthz", healthz,
                             nullptr);
            const Scrape cur = parseProm(metrics.body);
            if (have_prev) {
                renderFrame(opt, cur, prev,
                            static_cast<double>(opt.intervalMs) /
                                1000.0,
                            healthz.status);
                if (opt.iterations > 0 &&
                    ++frames >= opt.iterations)
                    break;
            }
            prev = cur;
            have_prev = true;
        }
        timespec ts{opt.intervalMs / 1000,
                    (opt.intervalMs % 1000) * 1000000L};
        nanosleep(&ts, nullptr);
    }
    return 0;
}
